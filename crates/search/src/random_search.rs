//! Random-search baseline and constant-mapper evaluation helpers
//! (§6.1: "the random search baseline evaluates 10 hardware designs with
//! 1000 mappings per layer per hardware design"; §6.4's CoSA / random
//! constant mappers).
//!
//! The searcher runs as [`Strategy::Random`] on the
//! [`SearchService`](crate::SearchService)'s worker fleet: hardware
//! designs are drawn sequentially from the seed, then each design is
//! searched as an independent work item with a private RNG stream, so
//! the result is bit-identical for every thread budget and batch
//! composition. [`random_search`] is the blocking single-network shim.

use crate::cosa::cosa_mapping;
use crate::engine::StartControl;
use crate::gd::SearchResult;
use crate::request::SearchRequest;
use crate::service::SearchService;
use crate::startpoints::random_hw;
use crate::strategy::{stream_seed, Strategy};
use dosa_accel::{HardwareConfig, Hierarchy};
use dosa_timeloop::{evaluate_layer, fits, random_mapping, LayerPerf, Mapping, ModelPerf};
use dosa_workload::Layer;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the random-search baseline
/// ([`Strategy::Random`]). Validated by
/// [`RandomSearchConfig::validate`] at
/// [`SearchService::submit`](crate::SearchService::submit).
#[derive(Debug, Clone, Copy)]
pub struct RandomSearchConfig {
    /// Number of hardware designs to sample (paper: 10).
    pub num_hw: usize,
    /// Joint mapping samples per hardware design (paper: 1000 per layer;
    /// one joint sample draws one mapping per layer).
    pub samples_per_hw: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomSearchConfig {
    fn default() -> Self {
        RandomSearchConfig {
            num_hw: 10,
            samples_per_hw: 1000,
            seed: 0,
        }
    }
}

/// Per-layer best-so-far tracker for a fixed hardware design.
struct PerLayerBest {
    perf: Vec<Option<(Mapping, LayerPerf)>>,
}

impl PerLayerBest {
    fn new(n: usize) -> PerLayerBest {
        PerLayerBest {
            perf: (0..n).map(|_| None).collect(),
        }
    }

    fn offer(&mut self, i: usize, mapping: Mapping, perf: LayerPerf) {
        let better = match &self.perf[i] {
            None => true,
            Some((_, old)) => perf.edp() < old.edp(),
        };
        if better {
            self.perf[i] = Some((mapping, perf));
        }
    }

    /// Whole-model EDP of the current per-layer bests (Eq. 14), infinite
    /// until every layer has a fitting mapping.
    fn model_edp(&self, layers: &[Layer]) -> f64 {
        let mut energy = 0.0;
        let mut latency = 0.0;
        for (layer, slot) in layers.iter().zip(&self.perf) {
            match slot {
                None => return f64::INFINITY,
                Some((_, p)) => {
                    energy += p.energy_uj * layer.count as f64;
                    latency += p.latency_cycles * layer.count as f64;
                }
            }
        }
        energy * latency
    }

    fn mappings(&self) -> Option<Vec<Mapping>> {
        self.perf
            .iter()
            .map(|s| s.as_ref().map(|(m, _)| m.clone()))
            .collect()
    }
}

/// One hardware design's share of a [`Strategy::Random`] job: the design
/// itself and the seed of its private mapping-RNG stream.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RandomDesign {
    pub(crate) hw: HardwareConfig,
    pub(crate) rng_seed: u64,
}

/// Draw the job's hardware designs sequentially from `cfg.seed` (exactly
/// like GD start points are generated before any parallelism) and derive
/// one private RNG stream per design, so the per-design searches can fan
/// out over any number of workers bit-identically.
pub(crate) fn plan_random_designs(cfg: &RandomSearchConfig) -> Vec<RandomDesign> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.num_hw)
        .map(|i| RandomDesign {
            hw: random_hw(&mut rng),
            rng_seed: stream_seed(cfg.seed, i as u64),
        })
        .collect()
}

/// Search one hardware design with random mappings: one work item of a
/// [`Strategy::Random`] job. Returns a design-local [`SearchResult`]
/// whose history offsets and running minima are restored by the
/// deterministic merge
/// ([`merge_start_results`](crate::engine::merge_start_results)).
pub(crate) fn run_random_design(
    layers: &[Layer],
    hier: &Hierarchy,
    design: &RandomDesign,
    samples: usize,
    ctrl: StartControl<'_>,
) -> SearchResult {
    let record_every = (samples / 20).max(1);
    let mut rng = StdRng::seed_from_u64(design.rng_seed);
    let mut best = PerLayerBest::new(layers.len());
    let mut result = SearchResult::empty();
    for s in 0..samples {
        if ctrl.cancelled() {
            break;
        }
        for (i, layer) in layers.iter().enumerate() {
            let m = random_mapping(&mut rng, &layer.problem, hier, design.hw.pe_side());
            if fits(&layer.problem, &m, &design.hw, hier) {
                let perf = evaluate_layer(&layer.problem, &m, &design.hw, hier);
                best.offer(i, m, perf);
            }
        }
        result.samples += 1;
        ctrl.count_samples(1);
        let edp = best.model_edp(layers);
        if edp < result.best_edp {
            if let Some(mappings) = best.mappings() {
                result.best_edp = edp;
                result.best_hw = design.hw;
                result.best_mappings = mappings;
                ctrl.observe_best(edp);
            }
        }
        if s % record_every == 0 {
            result.record();
        }
    }
    result
}

/// Run the random-search baseline of §6.1/§6.3, blocking until done.
///
/// This is a thin shim over the job service: it submits one
/// single-network [`Strategy::Random`] request to a throwaway
/// [`SearchService`](crate::SearchService) and waits. The worker-thread
/// budget is read from the calling thread's rayon configuration, and the
/// result is bit-identical for every budget (each hardware design is
/// searched by a private RNG stream derived from the seed). For
/// batching, live progress, or cancellation, use the service directly.
///
/// # Panics
///
/// Panics if `layers` is empty or `cfg` fails
/// [`RandomSearchConfig::validate`].
pub fn random_search(layers: &[Layer], hier: &Hierarchy, cfg: &RandomSearchConfig) -> SearchResult {
    let service = SearchService::builder()
        .threads(rayon::current_num_threads())
        .build();
    let request = SearchRequest::builder(hier.clone())
        .network("network", layers.to_vec())
        .strategy(Strategy::Random(*cfg))
        .build();
    match service.submit(request) {
        Ok(handle) => handle
            .wait()
            // dosa-lint: allow(panic-perimeter) — documented perimeter of the
            // one-call convenience entrypoint; callers wanting typed errors
            // use `SearchService::submit` + `wait` directly.
            .unwrap_or_else(|err| panic!("search job failed: {err}"))
            .into_single(),
        // dosa-lint: allow(panic-perimeter) — same convenience-entrypoint
        // perimeter: an invalid request here is a caller bug, not a job fault.
        Err(e) => panic!("invalid random-search request: {e}"),
    }
}

/// Evaluate `layers` on fixed hardware with CoSA as a constant mapper
/// (§6.4). Returns whole-model performance.
pub fn evaluate_with_cosa(layers: &[Layer], hw: &HardwareConfig, hier: &Hierarchy) -> ModelPerf {
    let paired: Vec<(Layer, Mapping)> = layers
        .iter()
        .map(|l| (l.clone(), cosa_mapping(&l.problem, hw, hier)))
        .collect();
    dosa_timeloop::evaluate_model(&paired, hw, hier)
}

/// Evaluate `layers` on fixed hardware with an N-sample random mapper per
/// layer (§6.4's "1000-sample random mapper"). Layers with no fitting
/// sample fall back to the CoSA mapping.
pub fn evaluate_with_random_mapper(
    layers: &[Layer],
    hw: &HardwareConfig,
    hier: &Hierarchy,
    samples_per_layer: usize,
    seed: u64,
) -> ModelPerf {
    let mut rng = StdRng::seed_from_u64(seed);
    let paired: Vec<(Layer, Mapping)> = layers
        .iter()
        .map(|l| {
            let found = dosa_timeloop::random_pruned_search(
                &mut rng,
                &l.problem,
                hw,
                hier,
                samples_per_layer,
            );
            let m = match found {
                Some(r) => r.mapping,
                None => cosa_mapping(&l.problem, hw, hier),
            };
            (l.clone(), m)
        })
        .collect();
    dosa_timeloop::evaluate_model(&paired, hw, hier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosa_workload::Problem;

    fn layers() -> Vec<Layer> {
        vec![
            Layer::once(Problem::conv("a", 3, 3, 28, 28, 64, 64, 1).unwrap()),
            Layer::once(Problem::matmul("b", 64, 128, 256).unwrap()),
        ]
    }

    #[test]
    fn random_search_produces_valid_result() {
        let hier = Hierarchy::gemmini();
        let cfg = RandomSearchConfig {
            num_hw: 3,
            samples_per_hw: 40,
            seed: 1,
        };
        let res = random_search(&layers(), &hier, &cfg);
        assert!(res.best_edp.is_finite());
        assert_eq!(res.samples, 120);
        assert_eq!(res.best_mappings.len(), 2);
        for w in res.history.windows(2) {
            assert!(w[1].best_edp <= w[0].best_edp);
        }
    }

    #[test]
    fn history_samples_increase_strictly_with_no_duplicated_tail() {
        let hier = Hierarchy::gemmini();
        // samples_per_hw chosen so the record cadence lands exactly on the
        // final sample — the case that used to produce a duplicated
        // trailing history point.
        for samples_per_hw in [21, 40] {
            let cfg = RandomSearchConfig {
                num_hw: 2,
                samples_per_hw,
                seed: 4,
            };
            let res = random_search(&layers(), &hier, &cfg);
            for w in res.history.windows(2) {
                assert!(
                    w[1].samples > w[0].samples,
                    "history samples not strictly increasing: {} then {}",
                    w[0].samples,
                    w[1].samples
                );
            }
            assert_eq!(
                res.history.last().unwrap().samples,
                res.samples,
                "history must end at the final sample count"
            );
        }
    }

    #[test]
    fn more_samples_never_worse() {
        let hier = Hierarchy::gemmini();
        let small = random_search(
            &layers(),
            &hier,
            &RandomSearchConfig {
                num_hw: 2,
                samples_per_hw: 10,
                seed: 7,
            },
        );
        let large = random_search(
            &layers(),
            &hier,
            &RandomSearchConfig {
                num_hw: 2,
                samples_per_hw: 100,
                seed: 7,
            },
        );
        assert!(large.best_edp <= small.best_edp);
    }

    #[test]
    fn constant_mappers_evaluate() {
        let hier = Hierarchy::gemmini();
        let hw = HardwareConfig::gemmini_default();
        let cosa = evaluate_with_cosa(&layers(), &hw, &hier);
        let rand = evaluate_with_random_mapper(&layers(), &hw, &hier, 50, 3);
        assert!(cosa.edp().is_finite() && cosa.edp() > 0.0);
        assert!(rand.edp().is_finite() && rand.edp() > 0.0);
    }
}
