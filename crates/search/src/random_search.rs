//! Random-search baseline and constant-mapper evaluation helpers
//! (§6.1: "the random search baseline evaluates 10 hardware designs with
//! 1000 mappings per layer per hardware design"; §6.4's CoSA / random
//! constant mappers).

use crate::cosa::cosa_mapping;
use crate::gd::{SearchPoint, SearchResult};
use crate::startpoints::random_hw;
use dosa_accel::{HardwareConfig, Hierarchy};
use dosa_timeloop::{evaluate_layer, fits, random_mapping, LayerPerf, Mapping, ModelPerf};
use dosa_workload::Layer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the random-search baseline.
#[derive(Debug, Clone, Copy)]
pub struct RandomSearchConfig {
    /// Number of hardware designs to sample (paper: 10).
    pub num_hw: usize,
    /// Joint mapping samples per hardware design (paper: 1000 per layer;
    /// one joint sample draws one mapping per layer).
    pub samples_per_hw: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomSearchConfig {
    fn default() -> Self {
        RandomSearchConfig {
            num_hw: 10,
            samples_per_hw: 1000,
            seed: 0,
        }
    }
}

/// Per-layer best-so-far tracker for a fixed hardware design.
struct PerLayerBest {
    perf: Vec<Option<(Mapping, LayerPerf)>>,
}

impl PerLayerBest {
    fn new(n: usize) -> PerLayerBest {
        PerLayerBest {
            perf: (0..n).map(|_| None).collect(),
        }
    }

    fn offer(&mut self, i: usize, mapping: Mapping, perf: LayerPerf) {
        let better = match &self.perf[i] {
            None => true,
            Some((_, old)) => perf.edp() < old.edp(),
        };
        if better {
            self.perf[i] = Some((mapping, perf));
        }
    }

    /// Whole-model EDP of the current per-layer bests (Eq. 14), infinite
    /// until every layer has a fitting mapping.
    fn model_edp(&self, layers: &[Layer]) -> f64 {
        let mut energy = 0.0;
        let mut latency = 0.0;
        for (layer, slot) in layers.iter().zip(&self.perf) {
            match slot {
                None => return f64::INFINITY,
                Some((_, p)) => {
                    energy += p.energy_uj * layer.count as f64;
                    latency += p.latency_cycles * layer.count as f64;
                }
            }
        }
        energy * latency
    }

    fn mappings(&self) -> Option<Vec<Mapping>> {
        self.perf
            .iter()
            .map(|s| s.as_ref().map(|(m, _)| m.clone()))
            .collect()
    }
}

/// Search one hardware design with random mappings, offering each joint
/// sample to `result` and returning the per-layer bests.
fn search_one_hw(
    rng: &mut impl Rng,
    layers: &[Layer],
    hw: &HardwareConfig,
    hier: &Hierarchy,
    samples: usize,
    result: &mut SearchResult,
    record_every: usize,
) {
    let mut best = PerLayerBest::new(layers.len());
    for s in 0..samples {
        for (i, layer) in layers.iter().enumerate() {
            let m = random_mapping(rng, &layer.problem, hier, hw.pe_side());
            if fits(&layer.problem, &m, hw, hier) {
                let perf = evaluate_layer(&layer.problem, &m, hw, hier);
                best.offer(i, m, perf);
            }
        }
        result.samples += 1;
        let edp = best.model_edp(layers);
        if edp < result.best_edp {
            if let Some(mappings) = best.mappings() {
                result.best_edp = edp;
                result.best_hw = *hw;
                result.best_mappings = mappings;
            }
        }
        if s % record_every == 0 {
            result.history.push(SearchPoint {
                samples: result.samples,
                best_edp: result.best_edp,
            });
        }
    }
}

/// Run the random-search baseline of §6.1/§6.3.
pub fn random_search(layers: &[Layer], hier: &Hierarchy, cfg: &RandomSearchConfig) -> SearchResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut result = SearchResult {
        best_edp: f64::INFINITY,
        best_hw: HardwareConfig::gemmini_default(),
        best_mappings: Vec::new(),
        history: Vec::new(),
        samples: 0,
    };
    let record_every = (cfg.samples_per_hw / 20).max(1);
    for _ in 0..cfg.num_hw {
        let hw = random_hw(&mut rng);
        search_one_hw(
            &mut rng,
            layers,
            &hw,
            hier,
            cfg.samples_per_hw,
            &mut result,
            record_every,
        );
    }
    result.history.push(SearchPoint {
        samples: result.samples,
        best_edp: result.best_edp,
    });
    result
}

/// Evaluate `layers` on fixed hardware with CoSA as a constant mapper
/// (§6.4). Returns whole-model performance.
pub fn evaluate_with_cosa(layers: &[Layer], hw: &HardwareConfig, hier: &Hierarchy) -> ModelPerf {
    let paired: Vec<(Layer, Mapping)> = layers
        .iter()
        .map(|l| (l.clone(), cosa_mapping(&l.problem, hw, hier)))
        .collect();
    dosa_timeloop::evaluate_model(&paired, hw, hier)
}

/// Evaluate `layers` on fixed hardware with an N-sample random mapper per
/// layer (§6.4's "1000-sample random mapper"). Layers with no fitting
/// sample fall back to the CoSA mapping.
pub fn evaluate_with_random_mapper(
    layers: &[Layer],
    hw: &HardwareConfig,
    hier: &Hierarchy,
    samples_per_layer: usize,
    seed: u64,
) -> ModelPerf {
    let mut rng = StdRng::seed_from_u64(seed);
    let paired: Vec<(Layer, Mapping)> = layers
        .iter()
        .map(|l| {
            let found = dosa_timeloop::random_pruned_search(
                &mut rng,
                &l.problem,
                hw,
                hier,
                samples_per_layer,
            );
            let m = match found {
                Some(r) => r.mapping,
                None => cosa_mapping(&l.problem, hw, hier),
            };
            (l.clone(), m)
        })
        .collect();
    dosa_timeloop::evaluate_model(&paired, hw, hier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosa_workload::Problem;

    fn layers() -> Vec<Layer> {
        vec![
            Layer::once(Problem::conv("a", 3, 3, 28, 28, 64, 64, 1).unwrap()),
            Layer::once(Problem::matmul("b", 64, 128, 256).unwrap()),
        ]
    }

    #[test]
    fn random_search_produces_valid_result() {
        let hier = Hierarchy::gemmini();
        let cfg = RandomSearchConfig {
            num_hw: 3,
            samples_per_hw: 40,
            seed: 1,
        };
        let res = random_search(&layers(), &hier, &cfg);
        assert!(res.best_edp.is_finite());
        assert_eq!(res.samples, 120);
        assert_eq!(res.best_mappings.len(), 2);
        for w in res.history.windows(2) {
            assert!(w[1].best_edp <= w[0].best_edp);
        }
    }

    #[test]
    fn more_samples_never_worse() {
        let hier = Hierarchy::gemmini();
        let small = random_search(
            &layers(),
            &hier,
            &RandomSearchConfig {
                num_hw: 2,
                samples_per_hw: 10,
                seed: 7,
            },
        );
        let large = random_search(
            &layers(),
            &hier,
            &RandomSearchConfig {
                num_hw: 2,
                samples_per_hw: 100,
                seed: 7,
            },
        );
        assert!(large.best_edp <= small.best_edp);
    }

    #[test]
    fn constant_mappers_evaluate() {
        let hier = Hierarchy::gemmini();
        let hw = HardwareConfig::gemmini_default();
        let cosa = evaluate_with_cosa(&layers(), &hw, &hier);
        let rand = evaluate_with_random_mapper(&layers(), &hw, &hier, 50, 3);
        assert!(cosa.edp().is_finite() && cosa.edp() > 0.0);
        assert!(rand.edp().is_finite() && rand.edp() > 0.0);
    }
}
