//! Two-loop Bayesian-optimization baseline (§6.1): a Gaussian-process
//! surrogate over the hardware design space with an inner random mapper,
//! following Spotlight's hyperparameters — 100 hardware designs, 100
//! mapping samples per layer per design, candidates selected from 1000
//! random proposals by expected improvement.
//!
//! The searcher runs as [`Strategy::BayesOpt`] on the
//! [`SearchService`](crate::SearchService)'s worker fleet. The outer GP
//! loop stays sequential and seed-deterministic (design proposals come
//! off one RNG stream in a fixed order), while the two hot inner loops
//! fan out: every joint mapping sample of a design's inner search draws
//! from its own RNG stream and is evaluated in parallel, and the
//! per-step EI scoring of the candidate designs is fleet-parallel with a
//! first-maximum (lowest-index) deterministic argmax. Results are
//! bit-identical for every thread budget and batch composition.
//! [`bayesian_search`] is the blocking single-network shim.

use crate::engine::{Fleet, StartControl};
use crate::gd::SearchResult;
use crate::gp::GaussianProcess;
use crate::request::SearchRequest;
use crate::service::SearchService;
use crate::startpoints::random_hw;
use crate::strategy::{stream_seed, Strategy};
use dosa_accel::{HardwareConfig, Hierarchy};
use dosa_timeloop::{evaluate_layer, fits, random_mapping, Mapping};
use dosa_workload::Layer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the BB-BO baseline ([`Strategy::BayesOpt`]).
/// Validated by [`BbboConfig::validate`] at
/// [`SearchService::submit`](crate::SearchService::submit).
#[derive(Debug, Clone, Copy)]
pub struct BbboConfig {
    /// Total hardware designs to evaluate (paper: 100).
    pub num_hw: usize,
    /// Initial random designs before the surrogate takes over (must be
    /// in `1..=num_hw`; values below 2 are raised to `min(2, num_hw)` at
    /// runtime, since a Gaussian process fit on a single observation has
    /// a degenerate posterior).
    pub init_random: usize,
    /// Joint mapping samples per hardware design (paper: 100).
    pub samples_per_hw: usize,
    /// Random hardware candidates scored by EI per BO step (paper: 1000).
    pub candidates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BbboConfig {
    fn default() -> Self {
        BbboConfig {
            num_hw: 100,
            init_random: 20,
            samples_per_hw: 100,
            candidates: 1000,
            seed: 0,
        }
    }
}

fn hw_features(hw: &HardwareConfig) -> Vec<f64> {
    vec![
        (hw.pe_side() as f64).ln(),
        hw.acc_kb().ln(),
        hw.spad_kb().ln(),
    ]
}

/// One evaluated layer candidate of a joint sample: the mapping and its
/// count-scaled energy / latency, or `None` if the mapping did not fit.
type LayerCandidate = Option<(Mapping, f64, f64)>;

/// The inner random-mapper loop of one BB-BO design, shared by every
/// outer step: joint samples are drawn from per-sample RNG streams and
/// evaluated across the fleet, then folded sequentially in sample order —
/// bit-identical to a serial run for every worker count.
struct InnerLoop<'a> {
    layers: &'a [Layer],
    hier: &'a Hierarchy,
    samples: usize,
    record_every: usize,
    fleet: &'a Fleet,
    ctrl: StartControl<'a>,
}

impl InnerLoop<'_> {
    /// Search `hw` with `self.samples` random joint samples, updating the
    /// global `result`. Returns `ln(best model EDP)` for the GP (or a
    /// large finite penalty when no sample fit, so the GP learns to avoid
    /// the region).
    fn search(&self, hw: &HardwareConfig, design_seed: u64, result: &mut SearchResult) -> f64 {
        let evaluated: Vec<Option<Vec<LayerCandidate>>> =
            self.fleet.run((0..self.samples).collect(), |_, s: usize| {
                if self.ctrl.cancelled() {
                    return None;
                }
                let mut rng = StdRng::seed_from_u64(stream_seed(design_seed, s as u64));
                let row = self
                    .layers
                    .iter()
                    .map(|layer| {
                        let m = random_mapping(&mut rng, &layer.problem, self.hier, hw.pe_side());
                        if fits(&layer.problem, &m, hw, self.hier) {
                            let perf = evaluate_layer(&layer.problem, &m, hw, self.hier);
                            Some((
                                m,
                                perf.energy_uj * layer.count as f64,
                                perf.latency_cycles * layer.count as f64,
                            ))
                        } else {
                            None
                        }
                    })
                    .collect();
                Some(row)
            });

        let mut best: Vec<LayerCandidate> = vec![None; self.layers.len()];
        for (s, row) in evaluated.into_iter().enumerate() {
            // A `None` row was skipped by cancellation; everything after
            // it is dropped so the fold stays a prefix of the serial run.
            // Samples are counted here, not in the parallel items, so the
            // live progress counter never exceeds the returned
            // `result.samples` even when cancellation drops in-flight rows.
            let Some(row) = row else { break };
            for (i, cand) in row.into_iter().enumerate() {
                if let Some((m, e, l)) = cand {
                    let better = match &best[i] {
                        None => true,
                        Some((_, be, bl)) => e * l < be * bl,
                    };
                    if better {
                        best[i] = Some((m, e, l));
                    }
                }
            }
            result.samples += 1;
            self.ctrl.count_samples(1);
            let edp = model_edp(&best);
            if edp < result.best_edp {
                result.best_edp = edp;
                result.best_hw = *hw;
                result.best_mappings = best
                    .iter()
                    .filter_map(|b| b.as_ref().map(|(m, _, _)| m.clone()))
                    .collect();
                self.ctrl.observe_best(edp);
            }
            if s % self.record_every == 0 {
                result.record();
            }
        }
        let edp = model_edp(&best);
        if edp.is_finite() {
            edp.ln()
        } else {
            // Penalize infeasible designs with a large but finite score so
            // the GP learns to avoid the region.
            1e3
        }
    }
}

fn model_edp(best: &[LayerCandidate]) -> f64 {
    let mut energy = 0.0;
    let mut latency = 0.0;
    for b in best {
        match b {
            None => return f64::INFINITY,
            Some((_, e, l)) => {
                energy += e;
                latency += l;
            }
        }
    }
    energy * latency
}

/// One BO step's design proposal: fit the GP, draw `candidates` random
/// designs sequentially off the outer RNG (keeping the outer loop
/// seed-deterministic), score their expected improvement across the
/// fleet, and take the first maximum (ties and all-NaN scores resolve to
/// the lowest candidate index, matching a serial scan).
fn propose_by_ei(
    rng: &mut impl Rng,
    observed_x: &[Vec<f64>],
    observed_y: &[f64],
    candidates: usize,
    fleet: &Fleet,
) -> HardwareConfig {
    let gp = GaussianProcess::fit(observed_x.to_vec(), observed_y.to_vec(), 1.0, 0.05);
    let best_y = observed_y.iter().cloned().fold(f64::INFINITY, f64::min);
    let cands: Vec<HardwareConfig> = (0..candidates).map(|_| random_hw(rng)).collect();
    let scores: Vec<f64> = fleet.run(cands.iter().map(hw_features).collect(), |_, feat| {
        gp.expected_improvement(&feat, best_y)
    });
    let mut best_index = 0;
    let mut best_ei = f64::NEG_INFINITY;
    for (i, ei) in scores.iter().enumerate() {
        if *ei > best_ei {
            best_ei = *ei;
            best_index = i;
        }
    }
    cands[best_index]
}

/// Run the BB-BO baseline on `layers` for one network of a
/// [`Strategy::BayesOpt`] job: a sequential outer GP loop over
/// `cfg.num_hw` designs with fleet-parallel inner loops.
pub(crate) fn run_bayesian_search(
    layers: &[Layer],
    hier: &Hierarchy,
    cfg: &BbboConfig,
    fleet: &Fleet,
    ctrl: StartControl<'_>,
) -> SearchResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut result = SearchResult::empty();
    let inner = InnerLoop {
        layers,
        hier,
        samples: cfg.samples_per_hw,
        record_every: (cfg.samples_per_hw / 4).max(1),
        fleet,
        ctrl,
    };

    let mut observed_x: Vec<Vec<f64>> = Vec::new();
    let mut observed_y: Vec<f64> = Vec::new();

    // At least two random designs before the GP takes over (a one-point
    // fit has near-zero posterior variance everywhere, making EI
    // useless), bounded by the total budget.
    let init_random = cfg.init_random.max(2).min(cfg.num_hw);
    for step in 0..cfg.num_hw {
        if ctrl.cancelled() {
            break;
        }
        let hw = if step < init_random {
            random_hw(&mut rng)
        } else {
            propose_by_ei(&mut rng, &observed_x, &observed_y, cfg.candidates, fleet)
        };
        let score = inner.search(&hw, stream_seed(cfg.seed, step as u64), &mut result);
        observed_x.push(hw_features(&hw));
        observed_y.push(score);
    }
    result
}

/// Run the BB-BO baseline on `layers`, blocking until done.
///
/// This is a thin shim over the job service: it submits one
/// single-network [`Strategy::BayesOpt`] request to a throwaway
/// [`SearchService`](crate::SearchService) and waits. The worker-thread
/// budget is read from the calling thread's rayon configuration, and the
/// result is bit-identical for every budget (the outer GP loop is
/// sequential; only the inner sampling and EI scoring fan out). For
/// batching, live progress, or cancellation, use the service directly.
///
/// # Panics
///
/// Panics if `layers` is empty or `cfg` fails [`BbboConfig::validate`].
pub fn bayesian_search(layers: &[Layer], hier: &Hierarchy, cfg: &BbboConfig) -> SearchResult {
    let service = SearchService::builder()
        .threads(rayon::current_num_threads())
        .build();
    let request = SearchRequest::builder(hier.clone())
        .network("network", layers.to_vec())
        .strategy(Strategy::BayesOpt(*cfg))
        .build();
    match service.submit(request) {
        Ok(handle) => handle
            .wait()
            // dosa-lint: allow(panic-perimeter) — documented perimeter of the
            // one-call convenience entrypoint; callers wanting typed errors
            // use `SearchService::submit` + `wait` directly.
            .unwrap_or_else(|err| panic!("search job failed: {err}"))
            .into_single(),
        // dosa-lint: allow(panic-perimeter) — same convenience-entrypoint
        // perimeter: an invalid request here is a caller bug, not a job fault.
        Err(e) => panic!("invalid BB-BO request: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosa_workload::Problem;

    fn layers() -> Vec<Layer> {
        vec![
            Layer::once(Problem::conv("a", 3, 3, 28, 28, 64, 64, 1).unwrap()),
            Layer::once(Problem::matmul("b", 64, 128, 256).unwrap()),
        ]
    }

    #[test]
    fn bo_runs_and_improves() {
        let hier = Hierarchy::gemmini();
        let cfg = BbboConfig {
            num_hw: 8,
            init_random: 3,
            samples_per_hw: 20,
            candidates: 50,
            seed: 2,
        };
        let res = bayesian_search(&layers(), &hier, &cfg);
        assert!(res.best_edp.is_finite());
        assert_eq!(res.samples, 8 * 20);
        for w in res.history.windows(2) {
            assert!(w[1].best_edp <= w[0].best_edp);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let hier = Hierarchy::gemmini();
        let cfg = BbboConfig {
            num_hw: 5,
            init_random: 2,
            samples_per_hw: 10,
            candidates: 20,
            seed: 11,
        };
        let a = bayesian_search(&layers(), &hier, &cfg);
        let b = bayesian_search(&layers(), &hier, &cfg);
        assert_eq!(a.best_edp, b.best_edp);
    }

    #[test]
    fn history_samples_increase_strictly_with_no_duplicated_tail() {
        let hier = Hierarchy::gemmini();
        // samples_per_hw = 5 makes the record cadence (every sample) land
        // on the final sample — the duplicated-tail case before dedup.
        let cfg = BbboConfig {
            num_hw: 3,
            init_random: 2,
            samples_per_hw: 5,
            candidates: 20,
            seed: 3,
        };
        let res = bayesian_search(&layers(), &hier, &cfg);
        for w in res.history.windows(2) {
            assert!(
                w[1].samples > w[0].samples,
                "history samples not strictly increasing: {} then {}",
                w[0].samples,
                w[1].samples
            );
        }
        assert_eq!(res.history.last().unwrap().samples, res.samples);
    }
}
