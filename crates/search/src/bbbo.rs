//! Two-loop Bayesian-optimization baseline (§6.1): a Gaussian-process
//! surrogate over the hardware design space with an inner random mapper,
//! following Spotlight's hyperparameters — 100 hardware designs, 100
//! mapping samples per layer per design, candidates selected from 1000
//! random proposals by expected improvement.

use crate::gd::{SearchPoint, SearchResult};
use crate::gp::GaussianProcess;
use crate::startpoints::random_hw;
use dosa_accel::{HardwareConfig, Hierarchy};
use dosa_timeloop::{evaluate_layer, fits, random_mapping, Mapping};
use dosa_workload::Layer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the BB-BO baseline.
#[derive(Debug, Clone, Copy)]
pub struct BbboConfig {
    /// Total hardware designs to evaluate (paper: 100).
    pub num_hw: usize,
    /// Initial random designs before the surrogate takes over.
    pub init_random: usize,
    /// Joint mapping samples per hardware design (paper: 100).
    pub samples_per_hw: usize,
    /// Random hardware candidates scored by EI per BO step (paper: 1000).
    pub candidates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BbboConfig {
    fn default() -> Self {
        BbboConfig {
            num_hw: 100,
            init_random: 20,
            samples_per_hw: 100,
            candidates: 1000,
            seed: 0,
        }
    }
}

fn hw_features(hw: &HardwareConfig) -> Vec<f64> {
    vec![
        (hw.pe_side() as f64).ln(),
        hw.acc_kb().ln(),
        hw.spad_kb().ln(),
    ]
}

/// Inner loop: random-mapper search of one hardware design. Returns
/// `(ln best model EDP, best mappings)` and updates the global result.
fn inner_search(
    rng: &mut impl Rng,
    layers: &[Layer],
    hw: &HardwareConfig,
    hier: &Hierarchy,
    samples: usize,
    result: &mut SearchResult,
    record_every: usize,
) -> f64 {
    let mut best: Vec<Option<(Mapping, f64, f64)>> = vec![None; layers.len()];
    for s in 0..samples {
        for (i, layer) in layers.iter().enumerate() {
            let m = random_mapping(rng, &layer.problem, hier, hw.pe_side());
            if fits(&layer.problem, &m, hw, hier) {
                let perf = evaluate_layer(&layer.problem, &m, hw, hier);
                let e = perf.energy_uj * layer.count as f64;
                let l = perf.latency_cycles * layer.count as f64;
                let better = match &best[i] {
                    None => true,
                    Some((_, be, bl)) => e * l < be * bl,
                };
                if better {
                    best[i] = Some((m, e, l));
                }
            }
        }
        result.samples += 1;
        let edp = model_edp(&best);
        if edp < result.best_edp {
            result.best_edp = edp;
            result.best_hw = *hw;
            result.best_mappings = best
                .iter()
                .filter_map(|b| b.as_ref().map(|(m, _, _)| m.clone()))
                .collect();
        }
        if s % record_every == 0 {
            result.history.push(SearchPoint {
                samples: result.samples,
                best_edp: result.best_edp,
            });
        }
    }
    let edp = model_edp(&best);
    if edp.is_finite() {
        edp.ln()
    } else {
        // Penalize infeasible designs with a large but finite score so the
        // GP learns to avoid the region.
        1e3
    }
}

fn model_edp(best: &[Option<(Mapping, f64, f64)>]) -> f64 {
    let mut energy = 0.0;
    let mut latency = 0.0;
    for b in best {
        match b {
            None => return f64::INFINITY,
            Some((_, e, l)) => {
                energy += e;
                latency += l;
            }
        }
    }
    energy * latency
}

/// Run the BB-BO baseline on `layers`.
pub fn bayesian_search(layers: &[Layer], hier: &Hierarchy, cfg: &BbboConfig) -> SearchResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut result = SearchResult {
        best_edp: f64::INFINITY,
        best_hw: HardwareConfig::gemmini_default(),
        best_mappings: Vec::new(),
        history: Vec::new(),
        samples: 0,
    };
    let record_every = (cfg.samples_per_hw / 4).max(1);

    let mut observed_x: Vec<Vec<f64>> = Vec::new();
    let mut observed_y: Vec<f64> = Vec::new();

    for step in 0..cfg.num_hw {
        let hw = if step < cfg.init_random.max(2) {
            random_hw(&mut rng)
        } else {
            // Fit the surrogate and pick the best candidate by EI.
            let gp = GaussianProcess::fit(observed_x.clone(), observed_y.clone(), 1.0, 0.05);
            let best_y = observed_y.iter().cloned().fold(f64::INFINITY, f64::min);
            let mut best_candidate = random_hw(&mut rng);
            let mut best_ei = f64::NEG_INFINITY;
            for _ in 0..cfg.candidates {
                let cand = random_hw(&mut rng);
                let ei = gp.expected_improvement(&hw_features(&cand), best_y);
                if ei > best_ei {
                    best_ei = ei;
                    best_candidate = cand;
                }
            }
            best_candidate
        };
        let score = inner_search(
            &mut rng,
            layers,
            &hw,
            hier,
            cfg.samples_per_hw,
            &mut result,
            record_every,
        );
        observed_x.push(hw_features(&hw));
        observed_y.push(score);
    }
    result.history.push(SearchPoint {
        samples: result.samples,
        best_edp: result.best_edp,
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosa_workload::Problem;

    fn layers() -> Vec<Layer> {
        vec![
            Layer::once(Problem::conv("a", 3, 3, 28, 28, 64, 64, 1).unwrap()),
            Layer::once(Problem::matmul("b", 64, 128, 256).unwrap()),
        ]
    }

    #[test]
    fn bo_runs_and_improves() {
        let hier = Hierarchy::gemmini();
        let cfg = BbboConfig {
            num_hw: 8,
            init_random: 3,
            samples_per_hw: 20,
            candidates: 50,
            seed: 2,
        };
        let res = bayesian_search(&layers(), &hier, &cfg);
        assert!(res.best_edp.is_finite());
        assert_eq!(res.samples, 8 * 20);
        for w in res.history.windows(2) {
            assert!(w[1].best_edp <= w[0].best_edp);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let hier = Hierarchy::gemmini();
        let cfg = BbboConfig {
            num_hw: 5,
            init_random: 2,
            samples_per_hw: 10,
            candidates: 20,
            seed: 11,
        };
        let a = bayesian_search(&layers(), &hier, &cfg);
        let b = bayesian_search(&layers(), &hier, &cfg);
        assert_eq!(a.best_edp, b.best_edp);
    }
}
