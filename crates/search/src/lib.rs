//! # dosa-search
//!
//! The searchers of the DOSA paper — the differentiable one-loop gradient
//! descent *and* the black-box baselines it is compared against — served
//! through one job-oriented search service with a pluggable [`Strategy`].
//!
//! ## The service
//!
//! DOSA's headline results are comparisons: the one-loop co-search versus
//! random search and Bayesian optimization, across networks, surrogates
//! and loop-ordering strategies (§6.2–6.5). The public API therefore
//! treats the search algorithm as data: describe a job with the
//! [`SearchRequest`] builder (one network or a batch of named networks
//! plus a [`Strategy`] carrying the algorithm, budget and seed), submit
//! it to a [`SearchService`], and observe it through the returned
//! [`JobHandle`]:
//!
//! * [`JobHandle::status`] / [`JobHandle::progress`] — non-blocking
//!   lifecycle and live per-network best-EDP + sample counters,
//! * [`JobHandle::cancel`] — cooperative cancellation at the next
//!   gradient-step or mapping-sample boundary, keeping the partial (still
//!   monotone) results,
//! * [`JobHandle::wait`] — block for the per-network [`BatchResult`],
//!   or the typed [`JobError`] of a failed job.
//!
//! Work items are **fault-isolated**: a panicking or non-finite item
//! fails only its own job (terminal [`JobStatus::Failed`], error from
//! [`JobHandle::error`]) and every sibling job is bit-identical to an
//! uncontended run. A request may carry a deadline
//! ([`SearchRequestBuilder::deadline`]) with a [`DeadlinePolicy`]: `Kill`
//! fails the job at the deadline, `Degrade` returns the deterministic
//! merge of the work items that finished — a bitwise prefix of the
//! uninterrupted run — flagged [`BatchResult::degraded`]. See the
//! [`fault`] module and the [`service`] module docs.
//!
//! Invalid configurations are rejected at the service boundary with a
//! typed [`ConfigError`] ([`GdConfig::validate`],
//! [`RandomSearchConfig::validate`], [`BbboConfig::validate`]). The
//! worker-thread budget is **per service**
//! ([`SearchServiceBuilder::threads`]), not a global rayon pool, so
//! differently-sized services coexist in one process.
//!
//! Jobs on one service run **concurrently**: every job's work items
//! interleave on the service's persistent worker pool (spawned once at
//! construction, never per job), and each request's [`SchedPolicy`]
//! (`Fifo` by default, `ShortestFirst`, or `Priority(u8)`) decides which
//! queued work item a free worker runs next — so a short gradient-descent
//! job completes while a long BB-BO job is still mid-flight instead of
//! queueing behind it. Ranks **age**: a waiting entry's effective
//! priority improves by one class per [`AGE_DISPATCH_PERIOD`] dispatches,
//! so `Priority` streams can delay `Fifo` traffic only for a bounded
//! number of dispatches, never starve it. A job can also cap its own
//! share of the pool with
//! [`SearchRequestBuilder::max_parallelism`]; a single-worker service
//! degenerates to strictly FIFO one-job-at-a-time execution.
//!
//! A batched request fans all networks' work items into one worker fleet
//! and demultiplexes per-network results on merge; every network's
//! result is **bit-identical** to a standalone submission with the same
//! seed, for any thread budget, batch composition, scheduling policy and
//! concurrent-job interleaving (see the [`service`] module docs for the
//! exact contract, and the repository's top-level `ARCHITECTURE.md` for
//! the crate map and the full request → validate → schedule → fan-out →
//! merge lifecycle).
//!
//! A service may also carry a content-addressed [`ResultCache`]
//! ([`SearchServiceBuilder::cache`]): completed work items are journaled
//! under fingerprints of everything their results depend on, identical
//! work later replays from the store instead of re-running (including
//! the remainder-only re-run of a cancelled job resubmitted identically
//! — checkpoint/resume), and a request can opt into seeding one extra
//! descent from the best cached neighbor of its network shape
//! ([`SearchRequestBuilder::warm_start`]). With the default
//! [`WarmStart::Off`], results with the cache enabled are bit-identical
//! to a cold run; see the [`cache`] module docs.
//!
//! ## Search strategies
//!
//! [`Strategy`] selects the algorithm a job runs; all three share the
//! request lifecycle above, so the paper's baseline comparison (Fig. 7)
//! is three concurrent submissions to one service instead of three
//! hand-rolled loops.
//!
//! ### Gradient descent (the default)
//!
//! DOSA's one-loop mapping-first co-search (§3.2, §5): start points fan
//! out across the fleet, each descending the request's [`Surrogate`].
//!
//! ```
//! use dosa_search::{GdConfig, SearchRequest, SearchService, Strategy};
//! use dosa_accel::Hierarchy;
//! use dosa_workload::{Layer, Problem};
//!
//! let layers = vec![Layer::once(Problem::matmul("m", 8, 32, 32)?)];
//! let service = SearchService::builder().threads(2).build();
//! let job = service.submit(
//!     SearchRequest::builder(Hierarchy::gemmini())
//!         .network("gemm", layers)
//!         .strategy(Strategy::GradientDescent(GdConfig {
//!             start_points: 1, steps_per_start: 6, round_every: 3,
//!             ..GdConfig::default()
//!         }))
//!         .build(),
//! )?;
//! assert!(job.wait()?.into_single().best_edp.is_finite());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ### Random search
//!
//! The §6.1 baseline (10 hardware designs × 1000 joint mapping samples):
//! designs fan out across the fleet, each searched by a private RNG
//! stream derived from the seed.
//!
//! ```
//! use dosa_search::{RandomSearchConfig, SearchRequest, SearchService, Strategy};
//! use dosa_accel::Hierarchy;
//! use dosa_workload::{Layer, Problem};
//!
//! let layers = vec![Layer::once(Problem::matmul("m", 8, 32, 32)?)];
//! let service = SearchService::builder().threads(2).build();
//! let job = service.submit(
//!     SearchRequest::builder(Hierarchy::gemmini())
//!         .network("gemm", layers)
//!         .strategy(Strategy::Random(RandomSearchConfig {
//!             num_hw: 2, samples_per_hw: 10, seed: 0,
//!         }))
//!         .build(),
//! )?;
//! let result = job.wait()?.into_single();
//! assert_eq!(result.samples, 2 * 10);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ### Bayesian optimization (BB-BO)
//!
//! The Spotlight-style two-loop baseline: a sequential, seed-deterministic
//! outer Gaussian-process loop whose inner random-mapper samples and
//! expected-improvement candidate scores fan out across the fleet.
//!
//! ```
//! use dosa_search::{BbboConfig, SearchRequest, SearchService, Strategy};
//! use dosa_accel::Hierarchy;
//! use dosa_workload::{Layer, Problem};
//!
//! let layers = vec![Layer::once(Problem::matmul("m", 8, 32, 32)?)];
//! let service = SearchService::builder().threads(2).build();
//! let job = service.submit(
//!     SearchRequest::builder(Hierarchy::gemmini())
//!         .network("gemm", layers)
//!         .strategy(Strategy::BayesOpt(BbboConfig {
//!             num_hw: 3, init_random: 2, samples_per_hw: 6, candidates: 10, seed: 0,
//!         }))
//!         .build(),
//! )?;
//! assert!(job.wait()?.into_single().best_edp.is_finite());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## The engine
//!
//! Underneath the gradient-descent strategy, one optimization loop — Adam
//! over all layers' log tiling factors, a tape cleared and reused every
//! step, periodic rounding to valid integer mappings (§5.3.2), and
//! per-sample accounting — descends whatever differentiable surrogate a
//! [`DiffLoss`] provides:
//!
//! * [`EdpLoss`] — the plain differentiable-EDP loss of §5, including the
//!   Baseline / Iterate / Softmax loop-ordering strategies of Figure 6
//!   ([`Surrogate::Edp`]),
//! * [`PredictedLatencyLoss`] — the §6.5 surrogate whose latency term runs
//!   through an analytical, DNN-only, or DNN-corrected
//!   [`LatencyPredictor`] ([`Surrogate::PredictedLatency`]),
//! * anything else via [`CustomSurrogate`] ([`Surrogate::Custom`]) or, for
//!   in-process blocking use, [`run_gd_search`] directly.
//!
//! ## Blocking shims
//!
//! Every strategy keeps a blocking free function that submits one
//! single-network job to a throwaway service and waits (the worker
//! budget follows the calling thread's rayon configuration):
//!
//! * [`dosa_search`] — [`Strategy::GradientDescent`] with
//!   [`Surrogate::Edp`],
//! * [`dosa_search_rtl`] — the fixed-PE real-hardware flow of §6.5 over
//!   [`Surrogate::PredictedLatency`],
//! * [`random_search`] — [`Strategy::Random`],
//! * [`bayesian_search`] — [`Strategy::BayesOpt`],
//! * plus the CoSA-substitute constrained mapper ([`cosa_mapping`]) used
//!   for start points and as the constant mapper of §6.4.

#![warn(missing_docs)]

mod adam;
mod bbbo;
pub mod cache;
mod cosa;
pub mod engine;
pub mod fault;
mod gd;
mod gp;
mod latency_model;
mod random_search;
mod request;
mod sched;
pub mod service;
mod startpoints;
mod strategy;

pub use adam::Adam;
pub use bbbo::{bayesian_search, BbboConfig};
pub use cache::{ResultCache, ResultCacheStats};
pub use cosa::{cosa_mapping, cosa_mappings, cosa_order};
pub use engine::{run_gd_search, DiffLoss, EdpLoss, PredictedLatencyLoss};
pub use fault::{DeadlinePolicy, FaultKind, FaultPlan, JobError};
pub use gd::{
    choose_best_orderings, dosa_search, evaluate_rounded, GdConfig, LoopOrderStrategy, SearchPoint,
    SearchResult,
};
pub use gp::GaussianProcess;
pub use latency_model::{
    dosa_search_rtl, evaluate_rtl, feature_vars, features, generate_rtl_dataset, LatencyModelKind,
    LatencyPredictor, RtlDataset, RtlSample, NUM_FEATURES,
};
pub use random_search::{
    evaluate_with_cosa, evaluate_with_random_mapper, random_search, RandomSearchConfig,
};
pub use request::{
    ConfigError, CustomSurrogate, NetworkSpec, SearchRequest, SearchRequestBuilder, Surrogate,
    WarmStart,
};
pub use sched::{SchedPolicy, AGE_DISPATCH_PERIOD};
pub use service::{
    BatchResult, JobHandle, JobProgress, JobStats, JobStatus, NetworkProgress, NetworkResult,
    SearchService, SearchServiceBuilder,
};
pub use startpoints::{generate_start_point, generate_start_points, random_hw, StartPoint};
pub use strategy::Strategy;
