//! # dosa-search
//!
//! The searchers of the DOSA paper, built around one shared
//! gradient-descent engine.
//!
//! ## The engine
//!
//! DOSA's one-loop co-search (§3.2, §5) is a single optimization loop —
//! Adam over all layers' log tiling factors, a tape cleared and reused
//! every step, periodic rounding to valid integer mappings (§5.3.2), and
//! per-sample accounting — that the paper instantiates against different
//! differentiable surrogates. This crate factors the loop into
//! [`run_gd_search`], driven by the [`DiffLoss`] trait:
//!
//! * [`EdpLoss`] — the plain differentiable-EDP loss of §5, including the
//!   Baseline / Iterate / Softmax loop-ordering strategies of Figure 6,
//! * [`PredictedLatencyLoss`] — the §6.5 surrogate whose latency term runs
//!   through an analytical, DNN-only, or DNN-corrected
//!   [`LatencyPredictor`].
//!
//! Start points run **in parallel**: each one descends on its own tape
//! with its own Adam state, and per-start results merge through a
//! deterministic reduction, so a run is bit-identical for every
//! worker-thread count (see the [`engine`] module docs) while scaling
//! across cores. Configure worker count through
//! `rayon::ThreadPoolBuilder::new().num_threads(n).build_global()` (the
//! `repro` binary exposes this as `--threads N`).
//!
//! ## The searchers
//!
//! * [`dosa_search`] — the one-loop mapping-first gradient-descent
//!   co-search (§3.2, §5): [`run_gd_search`] + [`EdpLoss`],
//! * [`dosa_search_rtl`] — the fixed-PE real-hardware flow of §6.5
//!   (Figure 12): [`run_gd_search`] + [`PredictedLatencyLoss`],
//! * [`random_search`] — the random-search baseline (10 hardware designs ×
//!   1000 mapping samples, §6.1),
//! * [`bayesian_search`] — the two-loop Bayesian-optimization baseline
//!   (Gaussian-process surrogate with Spotlight-style hyperparameters),
//! * the CoSA-substitute constrained mapper ([`cosa_mapping`]) used for
//!   start points and as the constant mapper of §6.4.
//!
//! ## Example
//!
//! ```no_run
//! use dosa_search::{dosa_search, GdConfig};
//! use dosa_accel::Hierarchy;
//! use dosa_workload::{unique_layers, Network};
//!
//! let layers = unique_layers(Network::ResNet50);
//! let result = dosa_search(&layers, &Hierarchy::gemmini(), &GdConfig::default());
//! println!("best EDP: {:.3e} on {}", result.best_edp, result.best_hw);
//! ```

#![warn(missing_docs)]

mod adam;
mod bbbo;
mod cosa;
pub mod engine;
mod gd;
mod gp;
mod latency_model;
mod random_search;
mod startpoints;

pub use adam::Adam;
pub use bbbo::{bayesian_search, BbboConfig};
pub use cosa::{cosa_mapping, cosa_mappings, cosa_order};
pub use engine::{run_gd_search, DiffLoss, EdpLoss, PredictedLatencyLoss};
pub use gd::{
    choose_best_orderings, dosa_search, evaluate_rounded, GdConfig, LoopOrderStrategy, SearchPoint,
    SearchResult,
};
pub use gp::GaussianProcess;
pub use latency_model::{
    dosa_search_rtl, evaluate_rtl, feature_vars, features, generate_rtl_dataset, LatencyModelKind,
    LatencyPredictor, RtlDataset, RtlSample, NUM_FEATURES,
};
pub use random_search::{
    evaluate_with_cosa, evaluate_with_random_mapper, random_search, RandomSearchConfig,
};
pub use startpoints::{generate_start_point, generate_start_points, random_hw, StartPoint};
