//! # dosa-search
//!
//! The searchers of the DOSA paper:
//!
//! * [`dosa_search`] — the one-loop mapping-first gradient-descent
//!   co-search (§3.2, §5), with the Baseline / Iterate / Softmax
//!   loop-ordering strategies of Figure 6,
//! * [`random_search`] — the random-search baseline (10 hardware designs ×
//!   1000 mapping samples, §6.1),
//! * [`bayesian_search`] — the two-loop Bayesian-optimization baseline
//!   (Gaussian-process surrogate with Spotlight-style hyperparameters),
//! * [`dosa_search_rtl`] — the fixed-PE real-hardware flow of §6.5 driven
//!   by the analytical, DNN-only, or DNN-augmented latency models,
//! * the CoSA-substitute constrained mapper ([`cosa_mapping`]) used for
//!   start points and as the constant mapper of §6.4.
//!
//! ## Example
//!
//! ```no_run
//! use dosa_search::{dosa_search, GdConfig};
//! use dosa_accel::Hierarchy;
//! use dosa_workload::{unique_layers, Network};
//!
//! let layers = unique_layers(Network::ResNet50);
//! let result = dosa_search(&layers, &Hierarchy::gemmini(), &GdConfig::default());
//! println!("best EDP: {:.3e} on {}", result.best_edp, result.best_hw);
//! ```

#![warn(missing_docs)]

mod adam;
mod bbbo;
mod cosa;
mod gd;
mod gp;
mod latency_model;
mod random_search;
mod startpoints;

pub use adam::Adam;
pub use bbbo::{bayesian_search, BbboConfig};
pub use cosa::{cosa_mapping, cosa_mappings, cosa_order};
pub use gd::{
    choose_best_orderings, dosa_search, evaluate_rounded, GdConfig, LoopOrderStrategy,
    SearchPoint, SearchResult,
};
pub use gp::GaussianProcess;
pub use latency_model::{
    dosa_search_rtl, evaluate_rtl, feature_vars, features, generate_rtl_dataset,
    LatencyModelKind, LatencyPredictor, RtlDataset, RtlSample, NUM_FEATURES,
};
pub use random_search::{
    evaluate_with_cosa, evaluate_with_random_mapper, random_search, RandomSearchConfig,
};
pub use startpoints::{generate_start_point, generate_start_points, random_hw, StartPoint};
