//! # dosa-search
//!
//! The searchers of the DOSA paper, served through one job-oriented
//! search service built on a shared gradient-descent engine.
//!
//! ## The service
//!
//! DOSA's value is running *many* one-loop co-searches — the paper sweeps
//! networks × surrogates × loop-ordering strategies (§6.2–6.5). The
//! public API is therefore a [`SearchService`]: describe a job with the
//! [`SearchRequest`] builder (one network or a batch of named networks, a
//! [`Surrogate`], a [`GdConfig`] budget and seed), submit it, and observe
//! it through the returned [`JobHandle`]:
//!
//! * [`JobHandle::status`] / [`JobHandle::progress`] — non-blocking
//!   lifecycle and live per-network best-EDP + sample counters,
//! * [`JobHandle::cancel`] — cooperative cancellation at the next
//!   gradient-step boundary, keeping the partial (still monotone) results,
//! * [`JobHandle::wait`] — block for the per-network [`BatchResult`].
//!
//! Invalid configurations are rejected at the service boundary with a
//! typed [`ConfigError`] ([`GdConfig::validate`]). The worker-thread
//! budget is **per service** ([`SearchServiceBuilder::threads`]), not a
//! global rayon pool, so differently-sized services coexist in one
//! process.
//!
//! A batched request fans all networks' start points into one worker
//! fleet and demultiplexes per-network results on merge; every network's
//! result is **bit-identical** to a standalone submission with the same
//! seed, for any thread budget and batch composition (see the [`service`]
//! module docs for the exact contract).
//!
//! ## The engine
//!
//! Underneath, one optimization loop — Adam over all layers' log tiling
//! factors, a tape cleared and reused every step, periodic rounding to
//! valid integer mappings (§5.3.2), and per-sample accounting — descends
//! whatever differentiable surrogate a [`DiffLoss`] provides:
//!
//! * [`EdpLoss`] — the plain differentiable-EDP loss of §5, including the
//!   Baseline / Iterate / Softmax loop-ordering strategies of Figure 6
//!   ([`Surrogate::Edp`]),
//! * [`PredictedLatencyLoss`] — the §6.5 surrogate whose latency term runs
//!   through an analytical, DNN-only, or DNN-corrected
//!   [`LatencyPredictor`] ([`Surrogate::PredictedLatency`]),
//! * anything else via [`CustomSurrogate`] ([`Surrogate::Custom`]) or, for
//!   in-process blocking use, [`run_gd_search`] directly.
//!
//! ## The searchers
//!
//! * [`dosa_search`] — the one-loop mapping-first gradient-descent
//!   co-search (§3.2, §5); a blocking shim that submits one
//!   [`Surrogate::Edp`] job and waits,
//! * [`dosa_search_rtl`] — the fixed-PE real-hardware flow of §6.5
//!   (Figure 12); a blocking shim over [`Surrogate::PredictedLatency`],
//! * [`random_search`] — the random-search baseline (10 hardware designs ×
//!   1000 mapping samples, §6.1),
//! * [`bayesian_search`] — the two-loop Bayesian-optimization baseline
//!   (Gaussian-process surrogate with Spotlight-style hyperparameters),
//! * the CoSA-substitute constrained mapper ([`cosa_mapping`]) used for
//!   start points and as the constant mapper of §6.4.
//!
//! ## Example
//!
//! ```no_run
//! use dosa_search::{GdConfig, SearchRequest, SearchService};
//! use dosa_accel::Hierarchy;
//! use dosa_workload::{unique_layers, Network};
//!
//! let service = SearchService::builder().threads(4).build();
//! let request = SearchRequest::builder(Hierarchy::gemmini())
//!     .network("resnet50", unique_layers(Network::ResNet50))
//!     .network("bert", unique_layers(Network::Bert))
//!     .config(GdConfig::default())
//!     .build();
//! let job = service.submit(request).expect("valid request");
//! while !job.status().is_terminal() {
//!     let p = job.progress();
//!     println!("{} samples, best EDP {:.3e}", p.total_samples(), p.best_edp());
//!     std::thread::sleep(std::time::Duration::from_millis(200));
//! }
//! for net in job.wait().networks {
//!     println!("{}: best EDP {:.3e}", net.network, net.result.best_edp);
//! }
//! ```

#![warn(missing_docs)]

mod adam;
mod bbbo;
mod cosa;
pub mod engine;
mod gd;
mod gp;
mod latency_model;
mod random_search;
mod request;
pub mod service;
mod startpoints;

pub use adam::Adam;
pub use bbbo::{bayesian_search, BbboConfig};
pub use cosa::{cosa_mapping, cosa_mappings, cosa_order};
pub use engine::{run_gd_search, DiffLoss, EdpLoss, PredictedLatencyLoss};
pub use gd::{
    choose_best_orderings, dosa_search, evaluate_rounded, GdConfig, LoopOrderStrategy, SearchPoint,
    SearchResult,
};
pub use gp::GaussianProcess;
pub use latency_model::{
    dosa_search_rtl, evaluate_rtl, feature_vars, features, generate_rtl_dataset, LatencyModelKind,
    LatencyPredictor, RtlDataset, RtlSample, NUM_FEATURES,
};
pub use random_search::{
    evaluate_with_cosa, evaluate_with_random_mapper, random_search, RandomSearchConfig,
};
pub use request::{
    ConfigError, CustomSurrogate, NetworkSpec, SearchRequest, SearchRequestBuilder, Surrogate,
};
pub use service::{
    BatchResult, JobHandle, JobProgress, JobStatus, NetworkProgress, NetworkResult, SearchService,
    SearchServiceBuilder,
};
pub use startpoints::{generate_start_point, generate_start_points, random_hw, StartPoint};
