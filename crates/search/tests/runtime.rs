//! Stress tests of the persistent worker runtime: randomized job mixes
//! on 1/2/4/8-slot pools must hold the three pool invariants — the live
//! OS-thread count never exceeds `slots + jobs-with-watchdogs + const`
//! (workers are spawned once per service, never per job or per fan-out),
//! every uninterrupted job's per-network result stays bit-identical to
//! its standalone run, and no admitted entry waits more dispatches than
//! the computable aging budget. Plus the starvation regression the aging
//! rank rule exists for: a `Fifo` job survives a continuous stream of
//! `Priority(0)` traffic that would park it forever under the pre-aging
//! rule.
//!
//! The thread-count probes read the process-wide `Threads:` line of
//! `/proc/self/status`, so every test in this binary serializes on one
//! mutex — a concurrently running sibling test would add its own service
//! threads to the count.

use dosa_accel::Hierarchy;
use dosa_search::{
    bayesian_search, dosa_search, random_search, BbboConfig, DeadlinePolicy, FaultKind, FaultPlan,
    GdConfig, JobStatus, RandomSearchConfig, SchedPolicy, SearchRequest, SearchResult,
    SearchService, Strategy, AGE_DISPATCH_PERIOD,
};
use dosa_workload::{Layer, Problem};
use proptest::prelude::*;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serializes the tests in this binary: the `/proc/self/status` thread
/// probe counts every thread in the process, so sibling tests must not
/// run (and spawn services) while a probing test measures.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial_guard() -> std::sync::MutexGuard<'static, ()> {
    // A panicking sibling only poisons the lock; the probe is still valid.
    // dosa-lint: allow(raw-mutex-lock) — test-local serializer: poison is
    // recovered inline via into_inner, the same recovery fault::lock provides.
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// The live OS-thread count of this process, from the `Threads:` row of
/// `/proc/self/status` — the same probe the `repro pool` gate uses.
fn live_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("/proc/self/status is readable on linux")
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .expect("status has a Threads: row")
        .trim()
        .parse()
        .expect("Threads: row is a count")
}

fn matmul_net() -> Vec<Layer> {
    vec![Layer::once(Problem::matmul("gemm", 64, 256, 256).unwrap())]
}

fn assert_bit_identical(a: &SearchResult, b: &SearchResult, what: &str) {
    assert_eq!(
        a.best_edp.to_bits(),
        b.best_edp.to_bits(),
        "{what}: best_edp diverged"
    );
    assert_eq!(a.best_hw, b.best_hw, "{what}: best_hw diverged");
    assert_eq!(a.history, b.history, "{what}: history diverged");
    assert_eq!(a.samples, b.samples, "{what}: sample accounting diverged");
}

/// One randomized job: a strategy, a scheduling policy, and at most one
/// kind of chaos, all decoded from flat proptest-drawn selectors (the
/// vendored proptest has no `prop_oneof`).
#[derive(Debug, Clone, Copy)]
struct JobSpec {
    strategy: u8,
    segment: u8,
    policy: u8,
    priority: u8,
    chaos: u8,
    seed: u64,
}

impl JobSpec {
    /// Segment length for GD jobs: `∞`, 1, 7, or 64 — the same grid the
    /// segment-parity tests pin, here mixed under concurrent load.
    fn segment_steps(&self) -> Option<usize> {
        match self.segment {
            0 => None,
            1 => Some(1),
            2 => Some(7),
            _ => Some(64),
        }
    }

    fn strategy(&self) -> Strategy {
        match self.strategy {
            // GD gets double weight: it is the only segmented strategy.
            0..=1 => Strategy::GradientDescent(GdConfig {
                start_points: 2,
                steps_per_start: 40,
                round_every: 20,
                seed: self.seed,
                segment_steps: self.segment_steps(),
                ..GdConfig::default()
            }),
            2 => Strategy::Random(RandomSearchConfig {
                num_hw: 2,
                samples_per_hw: 30,
                seed: self.seed,
            }),
            _ => Strategy::BayesOpt(BbboConfig {
                num_hw: 3,
                init_random: 2,
                samples_per_hw: 6,
                candidates: 10,
                seed: self.seed,
            }),
        }
    }

    fn policy(&self) -> SchedPolicy {
        match self.policy {
            0..=1 => SchedPolicy::Fifo,
            2 => SchedPolicy::ShortestFirst,
            _ => SchedPolicy::Priority(self.priority),
        }
    }

    /// The standalone reference result this job must match bit-for-bit
    /// when it runs uninterrupted. Always unsegmented: segmentation must
    /// be bit-invisible.
    fn standalone(&self, hier: &Hierarchy) -> SearchResult {
        match self.strategy() {
            Strategy::GradientDescent(cfg) => dosa_search(
                &matmul_net(),
                hier,
                &GdConfig {
                    segment_steps: None,
                    ..cfg
                },
            ),
            Strategy::Random(cfg) => random_search(&matmul_net(), hier, &cfg),
            Strategy::BayesOpt(cfg) => bayesian_search(&matmul_net(), hier, &cfg),
            _ => unreachable!("JobSpec::strategy only builds the three variants above"),
        }
    }

    /// Chaos decode, weighted toward "none" so most jobs stay eligible
    /// for the bit-parity assertion: 0–5 none, 6 a watchdog-armed but
    /// never-firing Degrade deadline, 7 a mid-run cancel, 8–9 benign
    /// injected delays (the fault hook must be a bit-exact no-op).
    fn cancels(&self) -> bool {
        self.chaos == 7
    }

    fn has_watchdog(&self) -> bool {
        self.chaos == 6
    }

    fn build(&self, hier: &Hierarchy) -> SearchRequest {
        let mut builder = SearchRequest::builder(hier.clone())
            .network("gemm", matmul_net())
            .strategy(self.strategy())
            .policy(self.policy());
        match self.chaos {
            6 => {
                // Watchdog coverage without truncation: a Degrade
                // deadline far beyond the job's runtime arms the
                // watchdog thread (counted by the ceiling) but never
                // fires, so bit-parity still applies.
                builder = builder
                    .deadline(Duration::from_secs(300))
                    .deadline_policy(DeadlinePolicy::Degrade);
            }
            8..=9 => {
                let mut plan = FaultPlan::new();
                for pos in 0..2 {
                    plan = plan.inject(pos, FaultKind::Delay(5 + self.seed % 10));
                }
                builder = builder.fault_plan(plan);
            }
            _ => {}
        }
        builder.build()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The three pool invariants under randomized load. For every drawn
    /// mix of strategies (GD at every segment length, random, BB-BO),
    /// policies (`Fifo`/`ShortestFirst`/`Priority(p)`), watchdog-armed
    /// deadlines, cancels, and benign injected delays, on a 1/2/4/8-slot
    /// pool:
    ///
    /// 1. **Thread ceiling** — at every sample the process grew by at
    ///    most `slots + jobs-with-watchdogs + SLACK` threads over the
    ///    pre-service baseline. Workers are spawned once at construction;
    ///    admitting a job, fanning out its items, or resuming a segment
    ///    spawns nothing (vs. O(jobs × starts) under spawn-per-fan-out).
    /// 2. **Bit-parity** — every job nobody cancelled returns results
    ///    bit-identical to its standalone run, whatever interleaving,
    ///    policy mix, segment length, or benign delay the case drew.
    /// 3. **Bounded wait** — no entry waited more dispatches than the
    ///    aging budget `255 · AGE_DISPATCH_PERIOD + D`, where `D` is the
    ///    total dispatch count of the whole mix: an entry waiting `w`
    ///    dispatches runs at effective class `class − w/AGE_DISPATCH_PERIOD`,
    ///    so after at most `255` periods it is rank-maximal and only the
    ///    `≤ D` entries already ahead of it can still precede it. No
    ///    admitted job waits forever.
    #[test]
    fn randomized_job_mixes_hold_the_pool_invariants(
        slots_sel in 0usize..4,
        raw_jobs in proptest::collection::vec(
            (0u8..4, 0u8..4, 0u8..4, 0u8..8, 0u8..10, 0u64..1_000),
            1..6,
        ),
    ) {
        let _guard = serial_guard();
        let slots = [1usize, 2, 4, 8][slots_sel];
        let jobs: Vec<JobSpec> = raw_jobs
            .into_iter()
            .map(|(strategy, segment, policy, priority, chaos, seed)| JobSpec {
                strategy, segment, policy, priority, chaos, seed,
            })
            .collect();
        let hier = Hierarchy::gemmini();

        // Standalone references first, so their transient service
        // threads are gone before the baseline is captured.
        let references: Vec<Option<SearchResult>> = jobs
            .iter()
            .map(|spec| (!spec.cancels()).then(|| spec.standalone(&hier)))
            .collect();

        let baseline = live_threads();
        let watchdogs = jobs.iter().filter(|s| s.has_watchdog()).count();
        // SLACK covers the cargo-test harness's own bookkeeping threads
        // and a worker respawn transiently overlapping the thread it
        // replaces — never per-job or per-item growth.
        const SLACK: usize = 4;
        let ceiling = baseline + slots + watchdogs + SLACK;

        let service = SearchService::builder().threads(slots).build();
        let handles: Vec<_> = jobs
            .iter()
            .map(|spec| service.submit(spec.build(&hier)).expect("request validates"))
            .collect();
        for (spec, handle) in jobs.iter().zip(&handles) {
            if spec.cancels() {
                handle.cancel();
            }
        }

        // Invariant 1, sampled while the mix drains: the pool never
        // grows with load.
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let now = live_threads();
            prop_assert!(
                now <= ceiling,
                "{now} live threads > ceiling {ceiling} (baseline {baseline}, \
                 {slots} slots, {watchdogs} watchdogs)"
            );
            if handles.iter().all(|h| h.status().is_terminal()) {
                break;
            }
            prop_assert!(
                Instant::now() < deadline,
                "job mix did not drain within 120s — an admitted job waited forever"
            );
            std::thread::sleep(Duration::from_millis(1));
        }

        // Invariant 2: every uncancelled job is bit-identical to its
        // standalone run (cancelled jobs merely terminated above).
        for (i, (handle, reference)) in handles.iter().zip(&references).enumerate() {
            let Some(reference) = reference else { continue };
            let batch = handle.wait().expect("uncancelled benign job cannot fail");
            prop_assert_eq!(handle.status(), JobStatus::Completed);
            prop_assert!(!batch.degraded, "the 300s Degrade deadline must never fire");
            assert_bit_identical(
                batch.get("gemm").expect("network present"),
                reference,
                &format!("job {i} under {slots}-slot concurrent load"),
            );
        }

        // Invariant 3: the computable aging budget. D over-counts the
        // mix's dispatches (plan + per-item + per-segment for every job,
        // cancelled or not), and no entry may have waited longer than
        // the budget derived from it.
        let total_dispatches: usize = handles
            .iter()
            .map(|h| {
                let s = h.stats();
                1 + s.work_items + s.segments_run
            })
            .sum();
        let budget = 255 * AGE_DISPATCH_PERIOD + total_dispatches as u64;
        for (i, handle) in handles.iter().enumerate() {
            let wait = handle.stats().max_queue_wait;
            prop_assert!(
                wait <= budget,
                "job {i} waited {wait} dispatches > aging budget {budget}"
            );
        }
    }
}

/// The starvation regression the aging rule exists for (ROADMAP item 1,
/// acceptance criterion: this test FAILS against the pre-PR rank rule).
///
/// One worker, one queued `Fifo` job, and a generator keeping a constant
/// backlog of `Priority(0)` jobs. Under the pre-aging rule this starves
/// forever: a fresh `Priority(0)` entry ranks `{class: 255, group: 0}`
/// and the `Fifo` entry `{class: 255, group: 1}`, so as long as the
/// backlog is never empty the Fifo entry loses every single pop.
///
/// With aging, an entry waiting `w` dispatches runs at
/// `class − w / AGE_DISPATCH_PERIOD`: after `AGE_DISPATCH_PERIOD` (64)
/// dispatches of waiting, the Fifo entry's effective class is 254 and it
/// beats every fresh `Priority(0)` entry in the queue. Each of the Fifo
/// job's entries (one plan + its work items) therefore waits at most
/// `~AGE_DISPATCH_PERIOD` dispatches, and the job finishes within a few
/// hundred priority dispatches — far below the generator's 2000-job cap,
/// which only a starved run can exhaust.
#[test]
fn a_fifo_job_is_never_starved_by_a_continuous_priority_stream() {
    let _guard = serial_guard();
    let hier = Hierarchy::gemmini();
    let service = SearchService::builder().threads(1).build();

    // Each stream job carries a benign 2ms Delay fault: the worker
    // sleeps mid-item, which hands the CPU to the generator loop below
    // even on a single-core machine — so the backlog provably never
    // empties and the stream is genuinely continuous. (Delays are
    // bit-exact no-ops; see `tests/faults.rs`.)
    let tiny = |seed: u64| {
        SearchRequest::builder(Hierarchy::gemmini())
            .network("p", matmul_net())
            .config(GdConfig {
                start_points: 1,
                steps_per_start: 5,
                round_every: 5,
                seed,
                ..GdConfig::default()
            })
            .fault_plan(FaultPlan::new().inject(0, FaultKind::Delay(2)))
            .policy(SchedPolicy::Priority(0))
            .build()
    };

    // Prime the backlog BEFORE submitting the Fifo job, so its plan
    // entry lands in an already-contended queue.
    let mut stream: Vec<_> = (0..8).map(|i| service.submit(tiny(i)).unwrap()).collect();

    let fifo = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("fifo", matmul_net())
                .config(GdConfig {
                    start_points: 2,
                    steps_per_start: 40,
                    round_every: 20,
                    seed: 99,
                    ..GdConfig::default()
                })
                .build(),
        )
        .unwrap();

    // Keep the backlog topped up until the Fifo job finishes — no sleep:
    // the generator must outpace the worker so the queue never empties.
    // The cap is the starvation detector: with aging the Fifo job needs
    // only ~2·AGE_DISPATCH_PERIOD dispatches (≈ one period per entry),
    // i.e. ~100 stream jobs, so reaching 2000 submissions means it
    // starved.
    const CAP: u64 = 2_000;
    let mut submitted = 8u64;
    while !fifo.status().is_terminal() {
        assert!(
            submitted < CAP,
            "Fifo job still not finished after {submitted} Priority(0) \
             submissions — the rank rule starves Fifo traffic"
        );
        stream.retain(|h| !h.status().is_terminal());
        while stream.len() < 8 && submitted < CAP {
            stream.push(service.submit(tiny(submitted)).unwrap());
            submitted += 1;
        }
        std::thread::yield_now();
    }

    let batch = fifo.wait().unwrap();
    assert_eq!(fifo.status(), JobStatus::Completed);
    let wait = fifo.stats().max_queue_wait;
    assert!(
        wait > 0,
        "the Fifo job must actually have waited behind priority traffic"
    );
    // The aging bound, observably honored: each Fifo entry overtakes all
    // fresh Priority(0) traffic after one period's wait, plus slack for
    // the (small, already-boosted) backlog in front of it. Pre-aging the
    // wait would grow with the stream (≈ 2·CAP here).
    assert!(
        wait <= 4 * AGE_DISPATCH_PERIOD,
        "Fifo entry waited {wait} dispatches, over the aging bound {}",
        4 * AGE_DISPATCH_PERIOD
    );
    // And the contention changed nothing about its result.
    let reference = dosa_search(
        &matmul_net(),
        &hier,
        &GdConfig {
            start_points: 2,
            steps_per_start: 40,
            round_every: 20,
            seed: 99,
            ..GdConfig::default()
        },
    );
    assert_bit_identical(
        batch.get("fifo").unwrap(),
        &reference,
        "Fifo job under priority flood",
    );
    drop(stream);
}

/// The deterministic flavor of the bounded-wait invariant: a `Fifo` job
/// admitted behind `N` earlier-submitted `Priority(0)` jobs on a
/// single-slot pool completes within the computable item budget — every
/// one of its entries waits at most the backlog's total dispatch count
/// plus one aging period, and `max_queue_wait` observably honors that
/// bound.
#[test]
fn a_fifo_job_behind_n_priority_jobs_finishes_within_the_item_budget() {
    let _guard = serial_guard();
    let hier = Hierarchy::gemmini();
    let service = SearchService::builder().threads(1).build();
    const N: u64 = 20;

    let priority: Vec<_> = (0..N)
        .map(|i| {
            service
                .submit(
                    SearchRequest::builder(hier.clone())
                        .network("p", matmul_net())
                        .config(GdConfig {
                            start_points: 1,
                            steps_per_start: 10,
                            round_every: 10,
                            seed: i,
                            ..GdConfig::default()
                        })
                        .policy(SchedPolicy::Priority(0))
                        .build(),
                )
                .unwrap()
        })
        .collect();
    let fifo = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("fifo", matmul_net())
                .config(GdConfig {
                    start_points: 1,
                    steps_per_start: 10,
                    round_every: 10,
                    seed: N,
                    ..GdConfig::default()
                })
                .build(),
        )
        .unwrap();

    fifo.wait().unwrap();
    assert_eq!(fifo.status(), JobStatus::Completed);
    // Item budget: the N priority jobs dispatch one plan + one descent
    // entry each (2N total); the Fifo job's two entries can each
    // additionally wait out one aging period before becoming
    // rank-maximal.
    let priority_dispatches: u64 = priority
        .iter()
        .map(|h| {
            h.wait().unwrap();
            1 + h.stats().segments_run as u64
        })
        .sum();
    let budget = priority_dispatches + AGE_DISPATCH_PERIOD;
    let wait = fifo.stats().max_queue_wait;
    assert!(
        wait <= budget,
        "Fifo job waited {wait} dispatches behind {N} priority jobs, \
         over the computable budget {budget}"
    );
}
