//! Integration tests of the job-oriented search service: batched
//! submissions must be bit-identical to standalone ones per (network,
//! seed), progress observation must be monotone and non-perturbing, and
//! cancellation must stop gradient stepping promptly while keeping the
//! partial results well-formed.

use dosa_accel::Hierarchy;
use dosa_search::{
    bayesian_search, dosa_search, dosa_search_rtl, random_search, BbboConfig, GdConfig, JobStatus,
    LatencyPredictor, RandomSearchConfig, SearchRequest, SearchResult, SearchService, Strategy,
    Surrogate,
};
use dosa_workload::{unique_layers, Layer, Network, Problem};
use std::time::{Duration, Instant};

fn resnet_subset() -> Vec<Layer> {
    unique_layers(Network::ResNet50)
        .into_iter()
        .take(2)
        .collect()
}

fn matmul_net() -> Vec<Layer> {
    vec![Layer::once(Problem::matmul("gemm", 64, 256, 256).unwrap())]
}

fn tiny_cfg(seed: u64) -> GdConfig {
    GdConfig {
        start_points: 2,
        steps_per_start: 60,
        round_every: 30,
        seed,
        ..GdConfig::default()
    }
}

fn assert_bit_identical(a: &SearchResult, b: &SearchResult, what: &str) {
    assert_eq!(
        a.best_edp.to_bits(),
        b.best_edp.to_bits(),
        "{what}: best_edp diverged ({} vs {})",
        a.best_edp,
        b.best_edp
    );
    assert_eq!(a.best_hw, b.best_hw, "{what}: best_hw diverged");
    assert_eq!(
        a.best_mappings, b.best_mappings,
        "{what}: mappings diverged"
    );
    assert_eq!(a.history, b.history, "{what}: history diverged");
    assert_eq!(a.samples, b.samples, "{what}: sample accounting diverged");
}

/// The headline batching guarantee: a batch of {ResNet-50 subset, one
/// matmul layer} returns per-network results bit-identical to two
/// individual submissions with the same seeds — through both the service
/// and the blocking `dosa_search` shim.
#[test]
fn batched_results_match_individual_submissions_bit_for_bit() {
    let hier = Hierarchy::gemmini();
    let service = SearchService::builder().threads(4).build();

    let batch = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network_seeded("resnet50", resnet_subset(), 5)
                .network_seeded("gemm", matmul_net(), 9)
                .config(tiny_cfg(0))
                .build(),
        )
        .unwrap()
        .wait()
        .unwrap();

    // Individual service submissions with the same per-network seeds.
    let solo_resnet = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("resnet50", resnet_subset())
                .config(tiny_cfg(5))
                .build(),
        )
        .unwrap()
        .wait()
        .unwrap()
        .into_single();
    let solo_gemm = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("gemm", matmul_net())
                .config(tiny_cfg(9))
                .build(),
        )
        .unwrap()
        .wait()
        .unwrap()
        .into_single();

    assert_bit_identical(
        batch.get("resnet50").unwrap(),
        &solo_resnet,
        "resnet50 vs solo",
    );
    assert_bit_identical(batch.get("gemm").unwrap(), &solo_gemm, "gemm vs solo");

    // And against the blocking shim (the pre-service public API).
    let shim_resnet = dosa_search(&resnet_subset(), &hier, &tiny_cfg(5));
    let shim_gemm = dosa_search(&matmul_net(), &hier, &tiny_cfg(9));
    assert_bit_identical(
        batch.get("resnet50").unwrap(),
        &shim_resnet,
        "resnet50 vs shim",
    );
    assert_bit_identical(batch.get("gemm").unwrap(), &shim_gemm, "gemm vs shim");
}

/// The per-network guarantee must hold for every service thread budget.
#[test]
fn batched_results_are_thread_budget_invariant() {
    let hier = Hierarchy::gemmini();
    let request = |hier: &Hierarchy| {
        SearchRequest::builder(hier.clone())
            .network_seeded("resnet50", resnet_subset(), 3)
            .network_seeded("gemm", matmul_net(), 4)
            .config(tiny_cfg(0))
            .build()
    };
    let one = SearchService::builder().threads(1).build();
    let eight = SearchService::builder().threads(8).build();
    let a = one.submit(request(&hier)).unwrap().wait().unwrap();
    let b = eight.submit(request(&hier)).unwrap().wait().unwrap();
    for name in ["resnet50", "gemm"] {
        assert_bit_identical(a.get(name).unwrap(), b.get(name).unwrap(), name);
    }
}

/// The predictor-adjusted surrogate batches identically too.
#[test]
fn rtl_surrogate_batch_matches_shim() {
    let hier = Hierarchy::gemmini();
    let predictor = LatencyPredictor::analytical();
    let cfg = GdConfig {
        start_points: 1,
        steps_per_start: 40,
        round_every: 20,
        seed: 2,
        ..GdConfig::default()
    };
    let service = SearchService::builder().threads(2).build();
    let batched = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("gemm", matmul_net())
                .surrogate(Surrogate::PredictedLatency(predictor.clone()))
                .config(cfg)
                .build(),
        )
        .unwrap()
        .wait()
        .unwrap()
        .into_single();
    let shim = dosa_search_rtl(&matmul_net(), &hier, &cfg, &predictor);
    assert_bit_identical(&batched, &shim, "rtl gemm");
}

/// Mid-run `progress()` snapshots are monotone — samples never decrease,
/// best-EDP never increases — and converge to the final result.
#[test]
fn progress_is_monotone_and_converges_to_the_result() {
    let hier = Hierarchy::gemmini();
    let service = SearchService::builder().threads(2).build();
    let job = service
        .submit(
            SearchRequest::builder(hier)
                .network("gemm", matmul_net())
                .config(GdConfig {
                    start_points: 2,
                    steps_per_start: 3000,
                    round_every: 100,
                    seed: 1,
                    ..GdConfig::default()
                })
                .build(),
        )
        .unwrap();

    let mut snapshots = Vec::new();
    while !job.status().is_terminal() {
        snapshots.push(job.progress());
        std::thread::sleep(Duration::from_millis(1));
    }
    let result = job.wait().unwrap().into_single();
    assert_eq!(job.status(), JobStatus::Completed);

    let mid_run = snapshots
        .iter()
        .filter(|p| p.status == JobStatus::Running && p.total_samples() > 0)
        .count();
    assert!(
        mid_run > 0,
        "no mid-run observation landed ({} snapshots)",
        snapshots.len()
    );
    for pair in snapshots.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        assert!(
            b.total_samples() >= a.total_samples(),
            "samples went backwards: {} -> {}",
            a.total_samples(),
            b.total_samples()
        );
        assert!(
            b.best_edp() <= a.best_edp(),
            "best EDP went up: {} -> {}",
            a.best_edp(),
            b.best_edp()
        );
    }
    assert_eq!(
        result.best_edp,
        job.progress().best_edp(),
        "final progress must agree with the merged result"
    );
    assert_eq!(result.samples, job.progress().total_samples());
}

/// Cancellation stops gradient stepping promptly (well before the budget
/// is consumed) and the partial history is still monotone non-increasing.
#[test]
fn cancel_stops_promptly_with_monotone_partial_history() {
    let hier = Hierarchy::gemmini();
    let service = SearchService::builder().threads(2).build();
    let cfg = GdConfig {
        start_points: 2,
        steps_per_start: 200_000, // would take minutes uncancelled
        round_every: 500,
        seed: 6,
        ..GdConfig::default()
    };
    let budget = cfg.start_points * cfg.steps_per_start;
    let job = service
        .submit(
            SearchRequest::builder(hier)
                .network("gemm", matmul_net())
                .config(cfg)
                .build(),
        )
        .unwrap();

    // Let it run until real progress is visible, then cancel.
    let t0 = Instant::now();
    while job.progress().total_samples() < 1_000 {
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "job never made progress"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    job.cancel();
    let result = job.wait().unwrap().into_single();
    assert_eq!(job.status(), JobStatus::Cancelled);

    assert!(
        result.samples < budget / 4,
        "cancelled job consumed {} of {} samples — not prompt",
        result.samples,
        budget
    );
    for w in result.history.windows(2) {
        assert!(
            w[1].best_edp <= w[0].best_edp,
            "partial history not monotone: {} -> {}",
            w[0].best_edp,
            w[1].best_edp
        );
    }
    // Cancelling a terminal job is a no-op.
    job.cancel();
    assert_eq!(job.status(), JobStatus::Cancelled);
}

/// The strategy guarantee for random search: a batched
/// [`Strategy::Random`] job returns per-network results bit-identical to
/// the standalone `random_search` free function, for every service
/// thread budget.
#[test]
fn random_strategy_batches_bit_identically_across_thread_budgets() {
    let hier = Hierarchy::gemmini();
    let cfg = RandomSearchConfig {
        num_hw: 3,
        samples_per_hw: 40,
        seed: 0,
    };
    let request = || {
        SearchRequest::builder(hier.clone())
            .network_seeded("resnet50", resnet_subset(), 5)
            .network_seeded("gemm", matmul_net(), 9)
            .strategy(Strategy::Random(cfg))
            .build()
    };
    let solo_resnet = random_search(
        &resnet_subset(),
        &hier,
        &RandomSearchConfig { seed: 5, ..cfg },
    );
    let solo_gemm = random_search(&matmul_net(), &hier, &RandomSearchConfig { seed: 9, ..cfg });
    for threads in [1, 4, 8] {
        let service = SearchService::builder().threads(threads).build();
        let batch = service.submit(request()).unwrap().wait().unwrap();
        assert_bit_identical(
            batch.get("resnet50").unwrap(),
            &solo_resnet,
            &format!("random resnet50 @ {threads} threads"),
        );
        assert_bit_identical(
            batch.get("gemm").unwrap(),
            &solo_gemm,
            &format!("random gemm @ {threads} threads"),
        );
    }
}

/// The strategy guarantee for BB-BO: a batched [`Strategy::BayesOpt`]
/// job matches the standalone `bayesian_search` free function bit for
/// bit, for every service thread budget (the outer GP loop is
/// sequential; only the inner loops fan out).
#[test]
fn bayes_strategy_batches_bit_identically_across_thread_budgets() {
    let hier = Hierarchy::gemmini();
    let cfg = BbboConfig {
        num_hw: 5,
        init_random: 2,
        samples_per_hw: 12,
        candidates: 25,
        seed: 0,
    };
    let request = || {
        SearchRequest::builder(hier.clone())
            .network_seeded("resnet50", resnet_subset(), 3)
            .network_seeded("gemm", matmul_net(), 4)
            .strategy(Strategy::BayesOpt(cfg))
            .build()
    };
    let solo_resnet = bayesian_search(&resnet_subset(), &hier, &BbboConfig { seed: 3, ..cfg });
    let solo_gemm = bayesian_search(&matmul_net(), &hier, &BbboConfig { seed: 4, ..cfg });
    for threads in [1, 8] {
        let service = SearchService::builder().threads(threads).build();
        let batch = service.submit(request()).unwrap().wait().unwrap();
        assert_bit_identical(
            batch.get("resnet50").unwrap(),
            &solo_resnet,
            &format!("bayes resnet50 @ {threads} threads"),
        );
        assert_bit_identical(
            batch.get("gemm").unwrap(),
            &solo_gemm,
            &format!("bayes gemm @ {threads} threads"),
        );
    }
}

/// Every strategy's history must be strictly increasing in samples (the
/// duplicated trailing point is gone) and monotone non-increasing in
/// best-EDP, through the service path.
#[test]
fn all_strategy_histories_are_strict_and_monotone() {
    let hier = Hierarchy::gemmini();
    let service = SearchService::builder().threads(4).build();
    let strategies = [
        Strategy::GradientDescent(tiny_cfg(1)),
        Strategy::Random(RandomSearchConfig {
            num_hw: 2,
            samples_per_hw: 40,
            seed: 1,
        }),
        Strategy::BayesOpt(BbboConfig {
            num_hw: 4,
            init_random: 2,
            samples_per_hw: 10,
            candidates: 20,
            seed: 1,
        }),
    ];
    for strategy in strategies {
        let name = strategy.name();
        let result = service
            .submit(
                SearchRequest::builder(hier.clone())
                    .network("gemm", matmul_net())
                    .strategy(strategy)
                    .build(),
            )
            .unwrap()
            .wait()
            .unwrap()
            .into_single();
        assert!(!result.history.is_empty(), "{name}: empty history");
        for w in result.history.windows(2) {
            assert!(
                w[1].samples > w[0].samples,
                "{name}: samples not strictly increasing ({} then {})",
                w[0].samples,
                w[1].samples
            );
            assert!(
                w[1].best_edp <= w[0].best_edp,
                "{name}: best-EDP went up ({} then {})",
                w[0].best_edp,
                w[1].best_edp
            );
        }
        assert_eq!(
            result.history.last().unwrap().samples,
            result.samples,
            "{name}: history must end at the final sample count"
        );
    }
}

/// Cancelling a running random-search job stops sampling promptly and
/// leaves a monotone partial history.
#[test]
fn random_cancel_stops_promptly_with_monotone_partial_history() {
    let hier = Hierarchy::gemmini();
    let service = SearchService::builder().threads(2).build();
    let cfg = RandomSearchConfig {
        num_hw: 4,
        samples_per_hw: 500_000, // would take minutes uncancelled
        seed: 2,
    };
    let budget = cfg.num_hw * cfg.samples_per_hw;
    let job = service
        .submit(
            SearchRequest::builder(hier)
                .network("gemm", matmul_net())
                .strategy(Strategy::Random(cfg))
                .build(),
        )
        .unwrap();

    let t0 = Instant::now();
    while job.progress().total_samples() < 1_000 {
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "job never made progress"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    job.cancel();
    let result = job.wait().unwrap().into_single();
    assert_eq!(job.status(), JobStatus::Cancelled);
    assert!(
        result.samples < budget / 4,
        "cancelled random job consumed {} of {budget} samples — not prompt",
        result.samples
    );
    for w in result.history.windows(2) {
        assert!(w[1].samples > w[0].samples, "partial history not strict");
        assert!(
            w[1].best_edp <= w[0].best_edp,
            "partial history not monotone"
        );
    }
}

/// Cancelling a running BB-BO job winds down at the next inner-loop
/// boundary with a monotone partial history.
#[test]
fn bayes_cancel_leaves_monotone_partial_history() {
    let hier = Hierarchy::gemmini();
    let service = SearchService::builder().threads(2).build();
    let cfg = BbboConfig {
        num_hw: 10_000, // would take a very long time uncancelled
        init_random: 10,
        samples_per_hw: 50,
        candidates: 100,
        seed: 6,
    };
    let job = service
        .submit(
            SearchRequest::builder(hier)
                .network("gemm", matmul_net())
                .strategy(Strategy::BayesOpt(cfg))
                .build(),
        )
        .unwrap();
    let t0 = Instant::now();
    while job.progress().total_samples() < 100 {
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "job never made progress"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    job.cancel();
    let result = job.wait().unwrap().into_single();
    assert_eq!(job.status(), JobStatus::Cancelled);
    assert!(
        result.samples < cfg.num_hw * cfg.samples_per_hw / 4,
        "cancelled BB-BO job consumed {} samples — not prompt",
        result.samples
    );
    // The terminal progress snapshot must agree with the returned result
    // even though cancellation dropped in-flight inner-loop rows.
    assert_eq!(
        job.progress().total_samples(),
        result.samples,
        "terminal progress must not exceed the returned sample count"
    );
    for w in result.history.windows(2) {
        assert!(w[1].samples > w[0].samples, "partial history not strict");
        assert!(
            w[1].best_edp <= w[0].best_edp,
            "partial history not monotone"
        );
    }
}

/// Jobs queue FIFO behind a running job and report `Queued` until the
/// scheduler reaches them.
#[test]
fn second_job_queues_behind_the_first() {
    let hier = Hierarchy::gemmini();
    let service = SearchService::builder().threads(1).build();
    let long = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("gemm", matmul_net())
                .config(GdConfig {
                    start_points: 1,
                    steps_per_start: 5_000,
                    round_every: 500,
                    seed: 0,
                    ..GdConfig::default()
                })
                .build(),
        )
        .unwrap();
    let short = service
        .submit(
            SearchRequest::builder(hier)
                .network("gemm", matmul_net())
                .config(tiny_cfg(1))
                .build(),
        )
        .unwrap();
    // Race-free FIFO check: read the short job's status FIRST. If it has
    // left Queued, the scheduler must already have retired the long job
    // (a job is marked terminal before the next one is popped), so the
    // long job's status read afterwards must be terminal.
    let short_status = short.status();
    assert!(
        short_status == JobStatus::Queued || long.status().is_terminal(),
        "short job was {short_status:?} while the long job had not finished"
    );
    let first = long.wait().unwrap().into_single();
    let second = short.wait().unwrap().into_single();
    assert!(first.best_edp.is_finite());
    assert!(second.best_edp.is_finite());
    assert!(long.id() < short.id());
}
