//! Parity of the [`EdpLoss`] engine with the pre-refactor sequential loss
//! path: for a fixed ResNet-50 layer and seed, the engine must reproduce
//! `build_loss`'s loss value and gradients bit-for-bit, including through
//! the buffer-reusing backward sweep.

use dosa_accel::{HardwareConfig, Hierarchy, MAX_PE_SIDE};
use dosa_autodiff::{SegScratch, SegmentPlan, Tape};
use dosa_model::{build_loss, LossOptions, RelaxedMapping};
use dosa_search::engine::DiffLoss;
use dosa_search::{cosa_mapping, EdpLoss, LoopOrderStrategy};
use dosa_workload::{unique_layers, Layer, Network};

fn fixture() -> (Vec<Layer>, Vec<RelaxedMapping>, Hierarchy) {
    let hier = Hierarchy::gemmini();
    // First unique ResNet-50 layer, mapped by the deterministic CoSA
    // substitute on the default Gemmini configuration.
    let layer = unique_layers(Network::ResNet50).remove(0);
    let hw = HardwareConfig::gemmini_default();
    let relaxed = vec![RelaxedMapping::from_mapping(&cosa_mapping(
        &layer.problem,
        &hw,
        &hier,
    ))];
    (vec![layer], relaxed, hier)
}

#[test]
fn edp_engine_matches_sequential_loss_and_gradients() {
    let (layers, relaxed, hier) = fixture();
    let opts = LossOptions::default();

    // Pre-refactor path: build_loss + allocating backward.
    let tape_seq = Tape::new();
    let built = build_loss(&tape_seq, &layers, &relaxed, &hier, &opts);
    let grads_seq = tape_seq.backward(built.loss);
    let flat_seq: Vec<f64> = built
        .leaves
        .iter()
        .flatten()
        .map(|l| grads_seq.wrt(*l))
        .collect();

    // Engine path: DiffLoss::build + segmented backward on reused scratch,
    // at several worker budgets — all must be bit-identical.
    let engine = EdpLoss {
        layers: &layers,
        hier: &hier,
        opts,
        strategy: LoopOrderStrategy::Iterate,
        fixed_pe_side: None,
        spatial_cap: MAX_PE_SIDE,
    };
    for threads in [1, 2, 8] {
        let tape = Tape::new();
        let mut plan = SegmentPlan::new();
        let mut leaves = Vec::new();
        let mut scratch = SegScratch::new();
        let loss_var = engine.build(&tape, &relaxed, &mut plan, &mut leaves);
        let view = tape.backward_segmented(loss_var, &plan, threads, &mut scratch);
        let flat: Vec<f64> = leaves.iter().map(|l| view.wrt(*l)).collect();

        assert_eq!(
            loss_var.value().to_bits(),
            built.loss.value().to_bits(),
            "loss value diverged ({threads} threads): {} vs {}",
            loss_var.value(),
            built.loss.value()
        );
        assert_eq!(flat.len(), flat_seq.len());
        for (i, (a, b)) in flat.iter().zip(&flat_seq).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "gradient {i} diverged ({threads} threads): {a} vs {b}"
            );
        }
        assert!(
            flat.iter().filter(|g| **g != 0.0).count() > 5,
            "gradients look dead"
        );
    }
}

#[test]
fn edp_engine_reproduces_golden_values() {
    // Golden values computed once from the sequential `build_loss` path at
    // this fixture (ResNet-50 layer 0, CoSA start on default Gemmini).
    // They pin the differentiable model's output across future refactors;
    // an intentional model change must update them consciously.
    let (layers, relaxed, hier) = fixture();
    let engine = EdpLoss {
        layers: &layers,
        hier: &hier,
        opts: LossOptions::default(),
        strategy: LoopOrderStrategy::Iterate,
        fixed_pe_side: None,
        spatial_cap: MAX_PE_SIDE,
    };
    let tape = Tape::new();
    let mut plan = SegmentPlan::new();
    let mut leaves = Vec::new();
    let loss_var = engine.build(&tape, &relaxed, &mut plan, &mut leaves);
    let mut adj = Vec::new();
    let view = tape.backward_into(loss_var, &mut adj);
    let grad0 = view.wrt(leaves[0]);
    let gsum: f64 = leaves.iter().map(|l| view.wrt(*l)).sum();

    let golden_loss = 2.068_342_885_133_567_7e1;
    let golden_grad0 = -4.446_379_062_030_455_5e-1;
    let golden_gsum = -1.449_876_573_815_829_7;
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * b.abs().max(1.0);
    assert!(
        close(loss_var.value(), golden_loss),
        "loss {} vs golden {}",
        loss_var.value(),
        golden_loss
    );
    assert!(
        close(grad0, golden_grad0),
        "grad0 {grad0} vs golden {golden_grad0}"
    );
    assert!(
        close(gsum, golden_gsum),
        "gsum {gsum} vs golden {golden_gsum}"
    );
}
