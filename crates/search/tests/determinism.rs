//! Thread-count invariance of the parallel GD engine: a search with a
//! fixed seed must return bit-identical results whether start points run
//! on one worker or many, and its sample accounting must match the
//! sequential count.
//!
//! Worker counts are varied with scoped pools
//! (`ThreadPoolBuilder::build` + `ThreadPool::install`) — the pattern
//! that also works against upstream rayon, where `build_global` can only
//! ever be called once per process.

use dosa_accel::Hierarchy;
use dosa_search::{dosa_search, dosa_search_rtl, GdConfig, LatencyPredictor};
use dosa_workload::{Layer, Problem};

fn layers() -> Vec<Layer> {
    vec![
        Layer::repeated(Problem::conv("a", 3, 3, 28, 28, 64, 64, 1).unwrap(), 2),
        Layer::once(Problem::matmul("b", 64, 256, 256).unwrap()),
    ]
}

fn cfg() -> GdConfig {
    GdConfig {
        start_points: 4,
        steps_per_start: 60,
        round_every: 30,
        seed: 12,
        ..GdConfig::default()
    }
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build scoped pool")
}

#[test]
fn same_seed_is_bit_identical_across_thread_counts() {
    let layers = layers();
    let hier = Hierarchy::gemmini();
    let cfg = cfg();

    let sequential = pool(1).install(|| dosa_search(&layers, &hier, &cfg));

    for threads in [2, 4, 8] {
        let parallel = pool(threads).install(|| dosa_search(&layers, &hier, &cfg));
        assert_eq!(
            sequential.best_edp.to_bits(),
            parallel.best_edp.to_bits(),
            "best_edp diverged at {threads} threads"
        );
        assert_eq!(sequential.best_hw, parallel.best_hw, "best_hw diverged");
        assert_eq!(
            sequential.best_mappings, parallel.best_mappings,
            "best_mappings diverged"
        );
        assert_eq!(sequential.history, parallel.history, "history diverged");
        assert_eq!(
            sequential.samples, parallel.samples,
            "sample totals diverged from the sequential count"
        );
    }

    // Expected sequential accounting: per start, one model evaluation per
    // step plus one reference evaluation per rounding, and the final
    // history point does not consume a sample.
    let roundings_per_start = cfg.steps_per_start / cfg.round_every;
    let expected = cfg.start_points * (cfg.steps_per_start + roundings_per_start);
    assert_eq!(sequential.samples, expected);
}

#[test]
fn rtl_search_is_bit_identical_across_thread_counts() {
    let layers = layers();
    let hier = Hierarchy::gemmini();
    let cfg = cfg();
    let predictor = LatencyPredictor::analytical();

    let sequential = pool(1).install(|| dosa_search_rtl(&layers, &hier, &cfg, &predictor));
    for threads in [2, 8] {
        let parallel = pool(threads).install(|| dosa_search_rtl(&layers, &hier, &cfg, &predictor));
        assert_eq!(
            sequential.best_edp.to_bits(),
            parallel.best_edp.to_bits(),
            "rtl best_edp diverged at {threads} threads"
        );
        assert_eq!(sequential.history, parallel.history);
        assert_eq!(sequential.samples, parallel.samples);
    }
}
