//! Property tests of the fault-isolation layer: for ANY proptest-chosen
//! interleaving of cancellation, deadlines (both policies), and injected
//! faults, a job must either fail with a typed [`JobError`] or return
//! per-network histories that stay strictly monotone (sample counts
//! strictly increasing, best EDP non-increasing) and are **bitwise
//! prefixes** of the same request's uninterrupted run. When the chaos is
//! benign (delays only, nothing expired, nothing cancelled), the result
//! must be bit-identical — the fault hook is a guaranteed no-op.

use dosa_accel::Hierarchy;
use dosa_search::{
    DeadlinePolicy, FaultKind, FaultPlan, GdConfig, JobError, JobStatus, SearchPoint,
    SearchRequest, SearchRequestBuilder, SearchResult, SearchService,
};
use dosa_workload::{Layer, Problem};
use proptest::prelude::*;
use std::time::Duration;

fn networks() -> Vec<(&'static str, Vec<Layer>)> {
    vec![
        (
            "gemm",
            vec![Layer::once(Problem::matmul("gemm", 64, 256, 256).unwrap())],
        ),
        (
            "conv",
            vec![Layer::once(
                Problem::conv("c", 3, 3, 14, 14, 32, 32, 1).unwrap(),
            )],
        ),
    ]
}

fn tiny_cfg(seed: u64) -> GdConfig {
    GdConfig {
        start_points: 2,
        steps_per_start: 40,
        round_every: 20,
        seed,
        ..GdConfig::default()
    }
}

fn request(seed: u64) -> SearchRequestBuilder {
    let mut builder = SearchRequest::builder(Hierarchy::gemmini());
    for (i, (name, layers)) in networks().into_iter().enumerate() {
        builder = builder.network_seeded(name, layers, seed + i as u64);
    }
    builder.config(tiny_cfg(seed))
}

/// Decode one proptest-drawn `(selector, delay)` pair into at most one
/// fault, weighted toward the benign outcomes.
fn decode_fault((selector, delay_ms): (u8, u64)) -> Option<FaultKind> {
    match selector {
        0..=4 => None,
        5..=7 => Some(FaultKind::Delay(delay_ms)),
        8 => Some(FaultKind::Panic),
        _ => Some(FaultKind::NonFiniteLoss),
    }
}

/// samples strictly increasing, best EDP non-increasing — the invariant
/// `merge_start_results` promises for every history it emits.
fn assert_strictly_monotone(history: &[SearchPoint], what: &str) {
    for w in history.windows(2) {
        assert!(
            w[0].samples < w[1].samples,
            "{what}: history sample counts must be strictly increasing ({} then {})",
            w[0].samples,
            w[1].samples
        );
        assert!(
            w[1].best_edp <= w[0].best_edp,
            "{what}: history best EDP must be non-increasing ({} then {})",
            w[0].best_edp,
            w[1].best_edp
        );
    }
}

/// `survivor`'s history is a bitwise prefix of `full`'s.
fn assert_bitwise_prefix(survivor: &SearchResult, full: &SearchResult, what: &str) {
    assert!(
        survivor.history.len() <= full.history.len(),
        "{what}: surviving history longer than the uninterrupted run's"
    );
    for (i, (s, f)) in survivor.history.iter().zip(&full.history).enumerate() {
        assert_eq!(s.samples, f.samples, "{what}: samples diverge at {i}");
        assert_eq!(
            s.best_edp.to_bits(),
            f.best_edp.to_bits(),
            "{what}: best EDP diverges at {i}"
        );
    }
    assert!(
        survivor.samples <= full.samples,
        "{what}: survivor consumed more samples than the uninterrupted run"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline robustness property: whatever combination of faults,
    /// deadline, and cancellation the case throws at a job, the outcome
    /// is either a typed failure (with `status() == Failed` and the error
    /// retrievable) or a batch whose surviving per-network histories are
    /// strictly monotone bitwise prefixes of the uninterrupted run.
    #[test]
    fn chaos_outcomes_are_typed_or_bitwise_prefixes(
        seed in 0u64..64,
        threads in 1usize..=2,
        raw_faults in proptest::collection::vec((0u8..10, 5u64..40), 4),
        // 0 = no deadline, 1 = Kill, 2 = Degrade.
        deadline_kind in 0u8..3,
        deadline_ms in 5u64..60,
        // 0 = no cancel, 1 = cancel after `cancel_ms`.
        cancel_kind in 0u8..2,
        cancel_ms in 0u64..30,
    ) {
        // Uninterrupted reference: same request, no chaos. The service
        // must outlive the wait — dropping it cancels in-flight jobs.
        let plain = SearchService::builder().threads(threads).build();
        let reference_job = plain
            .submit(request(seed).build())
            .expect("request validates");
        let reference = reference_job.wait().expect("uninterrupted run cannot fail");
        prop_assert!(!reference.degraded);
        prop_assert_eq!(reference_job.status(), JobStatus::Completed);

        let faults: Vec<Option<FaultKind>> =
            raw_faults.into_iter().map(decode_fault).collect();
        let mut plan = FaultPlan::new();
        for (pos, fault) in faults.iter().enumerate() {
            if let Some(kind) = *fault {
                plan = plan.inject(pos, kind);
            }
        }
        let mut builder = request(seed).fault_plan(plan);
        if deadline_kind > 0 {
            builder = builder
                .deadline(Duration::from_millis(deadline_ms))
                .deadline_policy(if deadline_kind == 2 {
                    DeadlinePolicy::Degrade
                } else {
                    DeadlinePolicy::Kill
                });
        }
        let service = SearchService::builder().threads(threads).build();
        let chaos = service.submit(builder.build()).expect("request validates");
        if cancel_kind == 1 {
            std::thread::sleep(Duration::from_millis(cancel_ms));
            chaos.cancel();
        }

        match chaos.wait() {
            Err(err) => {
                prop_assert!(
                    matches!(
                        err,
                        JobError::WorkerPanic { .. }
                            | JobError::NonFiniteLoss { .. }
                            | JobError::DeadlineExceeded
                    ),
                    "unexpected failure mode: {err}"
                );
                prop_assert_eq!(chaos.status(), JobStatus::Failed);
                prop_assert!(chaos.error().is_some(), "Failed job must expose its error");
                match err {
                    JobError::WorkerPanic { item, .. } => {
                        prop_assert!(matches!(faults[item], Some(FaultKind::Panic)));
                    }
                    JobError::NonFiniteLoss { item, .. } => {
                        prop_assert!(matches!(faults[item], Some(FaultKind::NonFiniteLoss)));
                    }
                    _ => {}
                }
            }
            Ok(batch) => {
                // No fatal fault fired before the job wrapped up: every
                // network survives with a monotone bitwise prefix.
                prop_assert!(chaos.error().is_none());
                if cancel_kind == 0 {
                    // Nobody cancelled: only a Degrade expiry may stop a
                    // job short of Completed, and it reports Completed too.
                    prop_assert_eq!(chaos.status(), JobStatus::Completed);
                }
                for (name, _) in networks() {
                    let survivor = batch.get(name).expect("every network reports a result");
                    let full = reference.get(name).expect("reference has every network");
                    assert_strictly_monotone(&survivor.history, name);
                    assert_bitwise_prefix(survivor, full, name);
                }
                // Benign chaos (delays at most, nothing truncated the
                // run): the fault hook must have been a bit-exact no-op.
                let benign = faults
                    .iter()
                    .flatten()
                    .all(|kind| matches!(kind, FaultKind::Delay(_)));
                if benign
                    && cancel_kind == 0
                    && !batch.degraded
                    && chaos.status() == JobStatus::Completed
                {
                    for (name, _) in networks() {
                        let survivor = batch.get(name).expect("network present");
                        let full = reference.get(name).expect("network present");
                        prop_assert_eq!(survivor.samples, full.samples);
                        prop_assert_eq!(
                            survivor.best_edp.to_bits(),
                            full.best_edp.to_bits(),
                            "benign chaos changed {}'s best EDP",
                            name
                        );
                        prop_assert_eq!(&survivor.history, &full.history);
                    }
                }
            }
        }
    }

    /// Degrade-focused variant: every work item is slowed enough that a
    /// short `Degrade` deadline usually expires mid-run on a sequential
    /// service. Whatever prefix of the plan survives, the job still
    /// reports `Completed`, and each network's history is a strictly
    /// monotone bitwise prefix of the uninterrupted run's.
    #[test]
    fn degrade_expiry_returns_a_completed_bitwise_prefix(
        seed in 64u64..96,
        delays in proptest::collection::vec(10u64..40, 4),
        deadline_ms in 5u64..35,
    ) {
        let plain = SearchService::builder().threads(1).build();
        let reference = plain
            .submit(request(seed).build())
            .expect("request validates")
            .wait()
            .expect("uninterrupted run cannot fail");

        let mut plan = FaultPlan::new();
        for (pos, ms) in delays.iter().enumerate() {
            plan = plan.inject(pos, FaultKind::Delay(*ms));
        }
        let service = SearchService::builder().threads(1).build();
        let degraded_job = service
            .submit(
                request(seed)
                    .fault_plan(plan)
                    .deadline(Duration::from_millis(deadline_ms))
                    .deadline_policy(DeadlinePolicy::Degrade)
                    .build(),
            )
            .expect("request validates");
        let batch = degraded_job
            .wait()
            .expect("Degrade never fails a job, it truncates it");
        prop_assert_eq!(degraded_job.status(), JobStatus::Completed);
        prop_assert!(degraded_job.error().is_none());
        for (name, _) in networks() {
            let survivor = batch.get(name).expect("every network reports a result");
            let full = reference.get(name).expect("reference has every network");
            assert_strictly_monotone(&survivor.history, name);
            assert_bitwise_prefix(survivor, full, name);
            if !batch.degraded {
                // The deadline never fired: the run must be bit-exact.
                prop_assert_eq!(&survivor.history, &full.history);
                prop_assert_eq!(survivor.samples, full.samples);
            }
        }
    }
}
