//! Manual wall-clock check that parallel start points beat one worker.
//! Ignored by default (timing-sensitive); run explicitly with
//! `cargo test --release -p dosa-search --test speedup -- --ignored --nocapture`.

use dosa_accel::Hierarchy;
use dosa_search::{dosa_search, GdConfig};
use dosa_workload::{Layer, Problem};
use std::time::Instant;

#[test]
#[ignore = "wall-clock measurement; run with --ignored --nocapture"]
fn parallel_starts_beat_one_worker() {
    let layers = vec![
        Layer::repeated(Problem::conv("a", 3, 3, 28, 28, 64, 64, 1).unwrap(), 2),
        Layer::once(Problem::matmul("b", 64, 256, 256).unwrap()),
    ];
    let hier = Hierarchy::gemmini();
    // Default cadence (890 steps, round every 300) with 4+ start points.
    let cfg = GdConfig {
        start_points: 4,
        ..GdConfig::default()
    };
    let pool = |n: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("build scoped pool")
    };

    let t = Instant::now();
    let seq = pool(1).install(|| dosa_search(&layers, &hier, &cfg));
    let t_seq = t.elapsed();

    let t = Instant::now();
    let par = pool(4).install(|| dosa_search(&layers, &hier, &cfg));
    let t_par = t.elapsed();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "{cores} cores; 1 thread: {t_seq:?}, 4 threads: {t_par:?}, speedup {:.2}x",
        t_seq.as_secs_f64() / t_par.as_secs_f64()
    );
    assert_eq!(seq.best_edp.to_bits(), par.best_edp.to_bits());
    if cores >= 2 {
        assert!(
            t_par < t_seq,
            "expected parallel ({t_par:?}) to beat sequential ({t_seq:?})"
        );
    } else {
        // Single-core machine: no speedup is possible; require the
        // parallel path to stay within 30% of sequential (bounded
        // scheduling overhead).
        assert!(
            t_par.as_secs_f64() < t_seq.as_secs_f64() * 1.3,
            "parallel overhead too high on one core: {t_par:?} vs {t_seq:?}"
        );
    }
}
