//! Integration tests of the content-addressed result cache: enabling the
//! cache must never change a result bit, a repeated identical batch must
//! replay entirely from the cache, a cancelled job resubmitted
//! identically must re-run only its remainder, warm starting must stay
//! opt-in, and request-level fingerprints must be injective field by
//! field.

use dosa_accel::Hierarchy;
use dosa_search::cache::{gd_item_key, network_shape_key};
use dosa_search::{
    dosa_search, GdConfig, JobStats, RandomSearchConfig, ResultCache, SearchRequest, SearchResult,
    SearchService, Strategy, Surrogate, WarmStart,
};
use dosa_workload::{Layer, Problem};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn matmul_net() -> Vec<Layer> {
    vec![Layer::once(Problem::matmul("gemm", 64, 256, 256).unwrap())]
}

fn conv_net() -> Vec<Layer> {
    vec![
        Layer::once(Problem::conv("c", 3, 3, 14, 14, 32, 32, 1).unwrap()),
        Layer::once(Problem::matmul("fc", 32, 64, 64).unwrap()),
    ]
}

fn tiny_cfg(seed: u64) -> GdConfig {
    GdConfig {
        start_points: 2,
        steps_per_start: 40,
        round_every: 20,
        seed,
        ..GdConfig::default()
    }
}

fn batched_request(seed: u64) -> SearchRequest {
    SearchRequest::builder(Hierarchy::gemmini())
        .network("gemm", matmul_net())
        .network_seeded("conv", conv_net(), seed + 1)
        .config(tiny_cfg(seed))
        .build()
}

/// Bit-level equality of two search results (the same check the repro
/// driver's parity gates apply).
fn assert_bit_identical(a: &SearchResult, b: &SearchResult, what: &str) {
    assert_eq!(
        a.best_edp.to_bits(),
        b.best_edp.to_bits(),
        "{what}: best_edp differs"
    );
    assert_eq!(a.best_hw, b.best_hw, "{what}: best_hw differs");
    assert_eq!(a.samples, b.samples, "{what}: samples differ");
    assert_eq!(a.history, b.history, "{what}: history differs");
}

#[test]
fn cache_on_equals_cache_off_and_repeat_hits_fully() {
    let request = batched_request(11);

    // Cold reference: no cache anywhere.
    let plain = SearchService::builder().threads(2).build();
    let reference = plain.submit(request.clone()).unwrap().wait().unwrap();

    let cache = ResultCache::in_memory(256);
    let service = SearchService::builder()
        .threads(2)
        .cache(Arc::clone(&cache))
        .build();

    // First cached run: all misses, results bit-identical to no-cache.
    let first = service.submit(request.clone()).unwrap();
    let first_results = first.wait().unwrap();
    let stats = first.stats();
    assert_eq!(stats.work_items, 4, "2 networks x 2 start points");
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_misses, stats.work_items);
    assert_eq!(stats.warm_starts, 0);
    for net in ["gemm", "conv"] {
        assert_bit_identical(
            first_results.get(net).unwrap(),
            reference.get(net).unwrap(),
            &format!("{net}: cache-on vs cache-off"),
        );
    }

    // Identical resubmission: 100% work-item hits, bit-identical batch.
    let second = service.submit(request).unwrap();
    let second_results = second.wait().unwrap();
    let stats = second.stats();
    assert_eq!(stats.cache_hits, stats.work_items, "expected a full replay");
    assert_eq!(stats.cache_misses, 0);
    for net in ["gemm", "conv"] {
        assert_bit_identical(
            second_results.get(net).unwrap(),
            reference.get(net).unwrap(),
            &format!("{net}: replayed vs cold"),
        );
    }
    assert!(cache.stats().hits >= 4);
    assert_eq!(cache.stats().journaled, 4);
}

#[test]
fn jobs_without_a_cache_report_zeroed_cache_stats() {
    let service = SearchService::builder().threads(2).build();
    let job = service.submit(batched_request(3)).unwrap();
    job.wait().unwrap();
    let stats = job.stats();
    // The cache counters stay zero; the scheduler counters do not (every
    // planned item runs on the pool, and `max_queue_wait` depends on the
    // dispatch interleaving, so it is only bounded, not fixed).
    assert_eq!(
        JobStats {
            max_queue_wait: 0,
            ..stats
        },
        JobStats {
            work_items: 4,
            segments_run: 4,
            ..JobStats::default()
        }
    );
    assert!(
        stats.max_queue_wait <= 4,
        "4 items + a plan dispatch bound the wait, got {}",
        stats.max_queue_wait
    );
}

#[test]
fn resume_after_cancel_reruns_only_the_remainder() {
    // Work items chunky enough that cancellation lands mid-job: random
    // search designs on one worker thread.
    let request = SearchRequest::builder(Hierarchy::gemmini())
        .network("conv", conv_net())
        .strategy(Strategy::Random(RandomSearchConfig {
            num_hw: 6,
            samples_per_hw: 2500,
            seed: 5,
        }))
        .build();

    // Uninterrupted reference, no cache.
    let plain = SearchService::builder().threads(1).build();
    let reference = plain
        .submit(request.clone())
        .unwrap()
        .wait()
        .unwrap()
        .into_single();

    let cache = ResultCache::in_memory(256);
    let service = SearchService::builder()
        .threads(1)
        .cache(Arc::clone(&cache))
        .build();

    // Run until at least one work item has been journaled, then cancel.
    let interrupted = service.submit(request.clone()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while cache.stats().journaled == 0 {
        assert!(
            Instant::now() < deadline,
            "no work item completed within 60s"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    interrupted.cancel();
    interrupted.wait().unwrap();

    // Identical resubmission: completed items replay, only the remainder
    // re-runs, and the final result is bit-identical to the
    // uninterrupted reference.
    let resumed = service.submit(request).unwrap();
    let resumed_result = resumed.wait().unwrap().into_single();
    let stats = resumed.stats();
    assert_eq!(stats.work_items, 6);
    assert!(stats.cache_hits >= 1, "resume must replay completed items");
    assert!(
        stats.cache_misses < stats.work_items,
        "resume must not re-run everything (hits {}, misses {})",
        stats.cache_hits,
        stats.cache_misses
    );
    assert_bit_identical(&resumed_result, &reference, "resumed vs uninterrupted");
}

#[test]
fn warm_start_is_opt_in_and_counted() {
    let hier = Hierarchy::gemmini();
    let cache = ResultCache::in_memory(256);
    let service = SearchService::builder()
        .threads(2)
        .cache(Arc::clone(&cache))
        .build();

    // Nothing journaled yet: a warm-started request finds no neighbor.
    let cold_warm = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("gemm", matmul_net())
                .config(tiny_cfg(21))
                .warm_start(WarmStart::NearestNeighbor)
                .build(),
        )
        .unwrap();
    let cold_result = cold_warm.wait().unwrap().into_single();
    assert_eq!(cold_warm.stats().warm_starts, 0);
    assert_eq!(cold_warm.stats().work_items, 2);

    // Same shape, different seed: the journaled neighbor seeds one extra
    // descent, which can only match or improve the merged best.
    let warmed = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("gemm", matmul_net())
                .config(tiny_cfg(22))
                .warm_start(WarmStart::NearestNeighbor)
                .build(),
        )
        .unwrap();
    let warmed_result = warmed.wait().unwrap().into_single();
    let stats = warmed.stats();
    assert_eq!(stats.warm_starts, 1);
    assert_eq!(stats.work_items, 3, "2 regular starts + 1 warm start");
    assert!(warmed_result.samples > 0);
    assert!(warmed_result.best_edp.is_finite());

    // Off by default: the same request without warm_start plans only the
    // regular starts and stays bit-identical to a cold run, cache or not.
    let off = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("gemm", matmul_net())
                .config(tiny_cfg(23))
                .build(),
        )
        .unwrap();
    let off_result = off.wait().unwrap().into_single();
    assert_eq!(off.stats().warm_starts, 0);
    assert_eq!(off.stats().work_items, 2);
    let plain = SearchService::builder().threads(2).build();
    let cold = plain
        .submit(
            SearchRequest::builder(hier)
                .network("gemm", matmul_net())
                .config(tiny_cfg(23))
                .build(),
        )
        .unwrap()
        .wait()
        .unwrap()
        .into_single();
    assert_bit_identical(&off_result, &cold, "warm-start-off vs no cache");
    drop(cold_result);
}

/// Segment-resume parity: a GD start split into bounded segments of any
/// length `k ∈ {1, 7, 64}` produces bitwise-identical history and
/// best-EDP to the unsegmented (`k = ∞`) run. Segmentation only
/// re-buckets the same gradient steps into worker dispatches — the
/// per-segment tape/scratch buffers are pure caches and the checkpoint
/// carries the full descent state (Adam moments included, no live RNG),
/// so no segment schedule can move a result bit.
#[test]
fn gd_segment_length_never_changes_a_result_bit() {
    let hier = Hierarchy::gemmini();
    let base = tiny_cfg(31);
    assert_eq!(
        base.segment_steps, None,
        "the reference must be unsegmented"
    );
    let reference = dosa_search(&matmul_net(), &hier, &base);
    let service = SearchService::builder().threads(2).build();
    for k in [1usize, 7, 64] {
        let job = service
            .submit(
                SearchRequest::builder(hier.clone())
                    .network("gemm", matmul_net())
                    .config(GdConfig {
                        segment_steps: Some(k),
                        ..base
                    })
                    .build(),
            )
            .unwrap();
        let result = job.wait().unwrap().into_single();
        assert_eq!(
            job.stats().segments_run,
            2 * 40usize.div_ceil(k),
            "2 starts x ceil(40 / {k}) segments"
        );
        assert_bit_identical(&result, &reference, &format!("k = {k} vs unsegmented"));
    }
}

/// Segmented checkpoint/resume through the cache: a segmented GD job
/// cancelled mid-run and resubmitted identically replays its journaled
/// descents and re-runs only the remainder, landing bit-identical to the
/// unsegmented uninterrupted reference. And because `segment_steps` is
/// deliberately excluded from the item fingerprint (it is bit-invisible
/// in results), a descent journaled under one segment length replays
/// under any other — including the unsegmented path.
#[test]
fn segmented_cancel_plus_cached_resubmit_is_bit_identical() {
    let hier = Hierarchy::gemmini();
    let cfg = GdConfig {
        start_points: 3,
        steps_per_start: 2_000,
        round_every: 500,
        seed: 41,
        segment_steps: Some(25),
        ..GdConfig::default()
    };
    let request = SearchRequest::builder(hier.clone())
        .network("gemm", matmul_net())
        .config(cfg)
        .build();

    // Unsegmented, uninterrupted, cache-free reference.
    let reference = dosa_search(
        &matmul_net(),
        &hier,
        &GdConfig {
            segment_steps: None,
            ..cfg
        },
    );

    let cache = ResultCache::in_memory(256);
    let service = SearchService::builder()
        .threads(1)
        .cache(Arc::clone(&cache))
        .build();

    // The three segmented descents round-robin on the single worker, so
    // the first journal entry lands late in the run; cancelling then
    // almost always interrupts the remaining descents between segments.
    let interrupted = service.submit(request.clone()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while cache.stats().journaled == 0 {
        assert!(Instant::now() < deadline, "no descent completed within 60s");
        std::thread::sleep(Duration::from_millis(1));
    }
    interrupted.cancel();
    interrupted.wait().unwrap();

    // Identical resubmission: journaled descents replay; the remainder
    // re-runs from step 1 (checkpoints live only on the in-memory queue,
    // they are never journaled) and merges bit-identical to the
    // reference.
    let resumed = service.submit(request).unwrap();
    let resumed_result = resumed.wait().unwrap().into_single();
    let stats = resumed.stats();
    assert_eq!(stats.work_items, 3);
    assert!(
        stats.cache_hits >= 1,
        "resume must replay the journaled descent"
    );
    assert!(
        stats.cache_misses < stats.work_items,
        "resume must not re-run everything (hits {}, misses {})",
        stats.cache_hits,
        stats.cache_misses
    );
    assert_bit_identical(
        &resumed_result,
        &reference,
        "segmented resume vs unsegmented reference",
    );

    // Cross-segment-length replay: the journal written under k = 25
    // fully serves the same request under k = 64 and k = ∞.
    for k in [Some(64), None] {
        let replay = service
            .submit(
                SearchRequest::builder(hier.clone())
                    .network("gemm", matmul_net())
                    .config(GdConfig {
                        segment_steps: k,
                        ..cfg
                    })
                    .build(),
            )
            .unwrap();
        let replay_result = replay.wait().unwrap().into_single();
        let stats = replay.stats();
        assert_eq!(
            stats.cache_hits, 3,
            "segment_steps must be invisible to the item fingerprint (k = {k:?})"
        );
        assert_eq!(stats.cache_misses, 0);
        assert_eq!(
            stats.segments_run, 0,
            "a full replay dispatches no descent segments"
        );
        assert_bit_identical(&replay_result, &reference, "cross-segment-length replay");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Request-level fingerprints: perturbing any single field of a GD
    /// work item's identity produces a different key.
    #[test]
    fn gd_item_keys_are_injective_per_field(
        seed in 0u64..u64::MAX - 1,
        start_index in 0usize..64,
        lr in 1e-4f64..1.0,
        steps in 1usize..2000,
    ) {
        let hier = Hierarchy::gemmini();
        let layers = conv_net();
        let cfg = GdConfig { learning_rate: lr, steps_per_start: steps, seed, ..GdConfig::default() };
        let base = gd_item_key(&hier, &layers, &Surrogate::Edp, &cfg, start_index).unwrap();

        let other_seed = GdConfig { seed: seed + 1, ..cfg };
        prop_assert!(base != gd_item_key(&hier, &layers, &Surrogate::Edp, &other_seed, start_index).unwrap());

        let other_steps = GdConfig { steps_per_start: steps + 1, ..cfg };
        prop_assert!(base != gd_item_key(&hier, &layers, &Surrogate::Edp, &other_steps, start_index).unwrap());

        let other_lr = GdConfig { learning_rate: f64::from_bits(lr.to_bits() + 1), ..cfg };
        prop_assert!(base != gd_item_key(&hier, &layers, &Surrogate::Edp, &other_lr, start_index).unwrap());

        prop_assert!(base != gd_item_key(&hier, &layers, &Surrogate::Edp, &cfg, start_index + 1).unwrap());

        let other_net = matmul_net();
        prop_assert!(base != gd_item_key(&hier, &other_net, &Surrogate::Edp, &cfg, start_index).unwrap());
    }

    /// `-0.0` and `0.0` learning rates canonicalize to one key (the only
    /// f64 pair IEEE `==` conflates), and the shape key ignores every
    /// config field.
    #[test]
    fn float_zero_canonicalization_and_shape_keys(seed in 0u64..u64::MAX) {
        let hier = Hierarchy::gemmini();
        let layers = matmul_net();
        let pos = GdConfig { learning_rate: 0.0, seed, ..GdConfig::default() };
        let neg = GdConfig { learning_rate: -0.0, seed, ..GdConfig::default() };
        prop_assert_eq!(
            gd_item_key(&hier, &layers, &Surrogate::Edp, &pos, 0).unwrap(),
            gd_item_key(&hier, &layers, &Surrogate::Edp, &neg, 0).unwrap()
        );
        // The warm-start neighborhood is identical across seeds/configs.
        prop_assert_eq!(
            network_shape_key(&hier, &layers),
            network_shape_key(&hier, &layers)
        );
    }
}
