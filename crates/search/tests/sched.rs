//! Integration tests of the concurrent job scheduler: jobs submitted to
//! one service must provably overlap, the scheduling policy must decide
//! who gets freed capacity, cancellation must hand slots (and admission)
//! to the queued work promptly, a single-slot budget must degenerate to
//! FIFO, and — above all — every network's result must stay bit-identical
//! to its standalone run under any interleaving.

use dosa_accel::Hierarchy;
use dosa_search::{
    bayesian_search, dosa_search, random_search, BbboConfig, GdConfig, JobStatus,
    RandomSearchConfig, SchedPolicy, SearchRequest, SearchResult, SearchService, Strategy,
};
use dosa_workload::{unique_layers, Layer, Network, Problem};
use std::time::{Duration, Instant};

fn matmul_net() -> Vec<Layer> {
    vec![Layer::once(Problem::matmul("gemm", 64, 256, 256).unwrap())]
}

fn resnet_subset() -> Vec<Layer> {
    unique_layers(Network::ResNet50)
        .into_iter()
        .take(2)
        .collect()
}

fn short_cfg(seed: u64) -> GdConfig {
    GdConfig {
        start_points: 2,
        steps_per_start: 60,
        round_every: 30,
        seed,
        ..GdConfig::default()
    }
}

/// A BB-BO budget that would take minutes uncancelled — the "long job"
/// of the overlap tests.
fn long_bbbo(seed: u64) -> BbboConfig {
    BbboConfig {
        num_hw: 10_000,
        init_random: 10,
        samples_per_hw: 50,
        candidates: 100,
        seed,
    }
}

fn assert_bit_identical(a: &SearchResult, b: &SearchResult, what: &str) {
    assert_eq!(
        a.best_edp.to_bits(),
        b.best_edp.to_bits(),
        "{what}: best_edp diverged ({} vs {})",
        a.best_edp,
        b.best_edp
    );
    assert_eq!(a.best_hw, b.best_hw, "{what}: best_hw diverged");
    assert_eq!(a.history, b.history, "{what}: history diverged");
    assert_eq!(a.samples, b.samples, "{what}: sample accounting diverged");
}

/// The headline scheduler guarantee (the ROADMAP's starvation scenario,
/// inverted): a short GD job submitted *after* a long BB-BO job completes
/// while the BB-BO job is still `Running`, because the long job's
/// parallelism cap provably leaves a worker slot free — and the short
/// job's result is still bit-identical to its standalone run despite the
/// interleaving.
#[test]
fn short_gd_job_completes_while_long_bayes_job_is_running() {
    let hier = Hierarchy::gemmini();
    let service = SearchService::builder().threads(2).build();
    let long = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("long", matmul_net())
                .strategy(Strategy::BayesOpt(long_bbbo(6)))
                .max_parallelism(1)
                .build(),
        )
        .unwrap();
    let cfg = short_cfg(3);
    let short = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("short", matmul_net())
                .config(cfg)
                .policy(SchedPolicy::ShortestFirst)
                .build(),
        )
        .unwrap();

    let result = short.wait().unwrap().into_single();
    assert_eq!(short.status(), JobStatus::Completed);
    assert_eq!(
        long.status(),
        JobStatus::Running,
        "the long BB-BO job must still be running when the short GD job \
         finishes — jobs did not overlap"
    );
    long.cancel();
    let partial = long.wait().unwrap().into_single();
    assert_eq!(long.status(), JobStatus::Cancelled);
    assert!(partial.samples < 10_000 * 50 / 4, "cancel was not prompt");

    let standalone = dosa_search(&matmul_net(), &hier, &cfg);
    assert_bit_identical(&result, &standalone, "short GD job under concurrent load");
}

/// `Priority` beats `Fifo` ordering: with a single admission slot held by
/// a long job, a later-submitted `Priority(5)` job must be admitted ahead
/// of an earlier `Fifo` job once the slot frees.
#[test]
fn priority_job_is_admitted_before_earlier_fifo_traffic() {
    let hier = Hierarchy::gemmini();
    let service = SearchService::builder().threads(1).build();
    let blocker = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("blocker", matmul_net())
                .config(GdConfig {
                    start_points: 1,
                    steps_per_start: 500_000,
                    round_every: 1_000,
                    seed: 0,
                    ..GdConfig::default()
                })
                .build(),
        )
        .unwrap();
    let fifo = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("fifo", matmul_net())
                .config(GdConfig {
                    start_points: 1,
                    steps_per_start: 2_000,
                    round_every: 500,
                    seed: 1,
                    ..GdConfig::default()
                })
                .build(),
        )
        .unwrap();
    let priority = service
        .submit(
            SearchRequest::builder(hier)
                .network("priority", matmul_net())
                .config(short_cfg(2))
                .policy(SchedPolicy::Priority(5))
                .build(),
        )
        .unwrap();

    // Free the single admission slot; the dispatcher must now pick the
    // Priority(5) job over the earlier-submitted Fifo job.
    blocker.cancel();
    let result = priority.wait().unwrap().into_single();
    assert!(result.best_edp.is_finite());
    // With one slot, the Fifo job could only have run before the priority
    // job if the scheduler ordered it first — in which case it would be
    // Completed by now. Queued/Running proves the priority job won.
    assert_ne!(
        fifo.status(),
        JobStatus::Completed,
        "the Fifo job finished before the Priority(5) job — priority was ignored"
    );
    fifo.cancel();
    fifo.wait().unwrap();
    blocker.wait().unwrap();
}

/// Cancelling a running job frees its capacity for the queued one: on a
/// single-slot service the queued job must start (and finish) promptly
/// after the cancel, and its result must match its standalone run.
#[test]
fn cancelling_a_running_job_frees_slots_for_the_queued_one() {
    let hier = Hierarchy::gemmini();
    let service = SearchService::builder().threads(1).build();
    let long = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("long", matmul_net())
                .strategy(Strategy::BayesOpt(long_bbbo(2)))
                .build(),
        )
        .unwrap();
    let cfg = short_cfg(7);
    let queued = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("queued", matmul_net())
                .config(cfg)
                .build(),
        )
        .unwrap();

    // Wait until the long job is demonstrably occupying the budget.
    let t0 = Instant::now();
    while long.progress().total_samples() < 100 {
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "long job never made progress"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        queued.status(),
        JobStatus::Queued,
        "a single-slot service must not admit the second job while the first runs"
    );
    long.cancel();
    let result = queued.wait().unwrap().into_single();
    assert_eq!(queued.status(), JobStatus::Completed);
    assert_eq!(long.status(), JobStatus::Cancelled);
    let standalone = dosa_search(&matmul_net(), &hier, &cfg);
    assert_bit_identical(&result, &standalone, "queued job after cancel");
}

/// A single-slot budget degenerates to strict FIFO under the default
/// policy: job `i+1` never leaves `Queued` before job `i` is terminal.
#[test]
fn single_slot_budget_degenerates_to_fifo() {
    let hier = Hierarchy::gemmini();
    let service = SearchService::builder().threads(1).build();
    let handles: Vec<_> = (0..3)
        .map(|i| {
            service
                .submit(
                    SearchRequest::builder(hier.clone())
                        .network("gemm", matmul_net())
                        .config(short_cfg(i))
                        .build(),
                )
                .unwrap()
        })
        .collect();
    while !handles.iter().all(|h| h.status().is_terminal()) {
        // Race-free prefix check: read the later job's status FIRST. If
        // it has left Queued, its predecessor was admitted-and-finished
        // earlier (terminal is absorbing), so the read that follows must
        // observe a terminal predecessor.
        for i in (1..handles.len()).rev() {
            let later = handles[i].status();
            if later != JobStatus::Queued {
                assert!(
                    handles[i - 1].status().is_terminal(),
                    "job {} was {later:?} while job {} had not finished",
                    i,
                    i - 1
                );
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    for h in &handles {
        assert_eq!(h.status(), JobStatus::Completed);
    }
}

/// The determinism contract under real concurrency: three jobs of three
/// different strategies (and mixed policies) interleaving on one small
/// service must each return results bit-identical to their standalone
/// runs.
#[test]
fn every_strategy_is_bit_identical_under_concurrent_load() {
    let hier = Hierarchy::gemmini();
    let gd_cfg = short_cfg(11);
    let random_cfg = RandomSearchConfig {
        num_hw: 3,
        samples_per_hw: 40,
        seed: 12,
    };
    let bbbo_cfg = BbboConfig {
        num_hw: 5,
        init_random: 2,
        samples_per_hw: 12,
        candidates: 25,
        seed: 13,
    };

    let service = SearchService::builder().threads(3).build();
    let gd = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network_seeded("resnet50", resnet_subset(), 11)
                .network_seeded("gemm", matmul_net(), 14)
                .config(gd_cfg)
                .policy(SchedPolicy::ShortestFirst)
                .build(),
        )
        .unwrap();
    let random = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("gemm", matmul_net())
                .strategy(Strategy::Random(random_cfg))
                .max_parallelism(2)
                .build(),
        )
        .unwrap();
    let bayes = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("gemm", matmul_net())
                .strategy(Strategy::BayesOpt(bbbo_cfg))
                .policy(SchedPolicy::Priority(2))
                .build(),
        )
        .unwrap();

    let gd_batch = gd.wait().unwrap();
    let random_result = random.wait().unwrap().into_single();
    let bayes_result = bayes.wait().unwrap().into_single();

    let solo_resnet = dosa_search(&resnet_subset(), &hier, &GdConfig { seed: 11, ..gd_cfg });
    let solo_gemm = dosa_search(&matmul_net(), &hier, &GdConfig { seed: 14, ..gd_cfg });
    assert_bit_identical(
        gd_batch.get("resnet50").unwrap(),
        &solo_resnet,
        "concurrent GD resnet50",
    );
    assert_bit_identical(
        gd_batch.get("gemm").unwrap(),
        &solo_gemm,
        "concurrent GD gemm",
    );
    assert_bit_identical(
        &random_result,
        &random_search(&matmul_net(), &hier, &random_cfg),
        "concurrent random",
    );
    assert_bit_identical(
        &bayes_result,
        &bayesian_search(&matmul_net(), &hier, &bbbo_cfg),
        "concurrent bayes",
    );
}

/// Dropping a service with several concurrently running jobs cancels all
/// of them without hanging, and their partial results stay well-formed.
#[test]
fn dropping_the_service_winds_down_concurrent_jobs() {
    let hier = Hierarchy::gemmini();
    let service = SearchService::builder().threads(2).build();
    let jobs: Vec<_> = (0..2)
        .map(|i| {
            service
                .submit(
                    SearchRequest::builder(hier.clone())
                        .network("long", matmul_net())
                        .strategy(Strategy::BayesOpt(long_bbbo(i)))
                        .build(),
                )
                .unwrap()
        })
        .collect();
    let t0 = Instant::now();
    while jobs.iter().any(|j| j.progress().total_samples() == 0) {
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "jobs never made progress"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    drop(service);
    for job in &jobs {
        let result = job.wait().unwrap(); // must not hang
        assert!(job.status().is_terminal());
        assert_eq!(result.networks.len(), 1);
        for w in result.networks[0].result.history.windows(2) {
            assert!(
                w[1].best_edp <= w[0].best_edp,
                "partial history not monotone"
            );
        }
    }
}
