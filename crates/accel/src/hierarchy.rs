//! The Gemmini memory hierarchy: memory levels, tensor placement (Table 4's
//! `B` matrix), spatial fanout placement, and bandwidths (Table 2).

use crate::arch::HardwareConfig;
use dosa_workload::{Dim, DimSet, Tensor};

/// Number of memory levels in the Gemmini hierarchy (§4.1).
pub const NUM_LEVELS: usize = 4;

/// Memory level indices, matching the paper's numbering.
pub mod level {
    /// Per-PE registers (hold weights in the WS dataflow).
    pub const REGISTERS: usize = 0;
    /// Accumulator SRAM (holds outputs / partial sums).
    pub const ACCUMULATOR: usize = 1;
    /// Scratchpad SRAM (holds weights and inputs).
    pub const SCRATCHPAD: usize = 2;
    /// Off-chip DRAM (holds everything).
    pub const DRAM: usize = 3;
}

/// Words transferred per DRAM transaction. Timeloop computes DRAM energy per
/// block accessed (a ceiling over elements); this constant drives the
/// reference model's block accounting (§4.6: the source of the small-layer
/// divergence in Figure 4).
pub const DRAM_BLOCK_WORDS: u64 = 64;

/// Static description of one memory level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryLevel {
    /// Human-readable name ("Registers", ...).
    pub name: &'static str,
    /// Which tensors this level stores (one row of Table 4's `B`).
    pub stores: [bool; 3],
    /// The problem dimension that may be spatially unrolled *below* this
    /// level (Gemmini WS: `C` below the accumulator, `K` below the
    /// scratchpad).
    pub spatial_dim: Option<Dim>,
}

impl MemoryLevel {
    /// Whether tensor `t` is stored at this level (the `B_{i,t}` entry).
    #[inline]
    pub fn stores(&self, t: Tensor) -> bool {
        self.stores[t.index()]
    }

    /// The set of tensors stored at this level.
    pub fn tensors(&self) -> impl Iterator<Item = Tensor> + '_ {
        Tensor::ALL.into_iter().filter(|t| self.stores(*t))
    }
}

/// The full hierarchy for the accelerator under study (Table 2 + Table 4).
///
/// # Examples
///
/// ```
/// use dosa_accel::{Hierarchy, level};
/// use dosa_workload::Tensor;
/// let h = Hierarchy::gemmini();
/// assert!(h.level(level::ACCUMULATOR).stores(Tensor::Outputs));
/// assert!(!h.level(level::REGISTERS).stores(Tensor::Inputs));
/// assert_eq!(h.innermost_level(Tensor::Inputs), level::SCRATCHPAD);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hierarchy {
    levels: [MemoryLevel; NUM_LEVELS],
}

impl Hierarchy {
    /// The weight-stationary Gemmini hierarchy of Table 4.
    pub fn gemmini() -> Hierarchy {
        Hierarchy {
            levels: [
                MemoryLevel {
                    name: "Registers",
                    stores: [true, false, false],
                    spatial_dim: None,
                },
                MemoryLevel {
                    name: "Accumulator",
                    stores: [false, false, true],
                    spatial_dim: Some(Dim::C),
                },
                MemoryLevel {
                    name: "Scratchpad",
                    stores: [true, true, false],
                    spatial_dim: Some(Dim::K),
                },
                MemoryLevel {
                    name: "DRAM",
                    stores: [true, true, true],
                    spatial_dim: None,
                },
            ],
        }
    }

    /// Metadata for memory level `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= NUM_LEVELS`.
    #[inline]
    pub fn level(&self, i: usize) -> &MemoryLevel {
        &self.levels[i]
    }

    /// All levels, inner to outer.
    pub fn levels(&self) -> &[MemoryLevel; NUM_LEVELS] {
        &self.levels
    }

    /// The innermost (closest to the MACs) level storing tensor `t`.
    pub fn innermost_level(&self, t: Tensor) -> usize {
        self.levels
            .iter()
            .position(|l| l.stores(t))
            .expect("every tensor is stored in DRAM")
    }

    /// The next level below `i` that stores `t`, if any.
    pub fn next_inner_level(&self, i: usize, t: Tensor) -> Option<usize> {
        (0..i).rev().find(|&j| self.levels[j].stores(t))
    }

    /// The next level above `i` that stores `t`, if any.
    pub fn next_outer_level(&self, i: usize, t: Tensor) -> Option<usize> {
        ((i + 1)..NUM_LEVELS).find(|&j| self.levels[j].stores(t))
    }

    /// Bandwidth of level `i` in words per cycle (Table 2): registers
    /// `2·C_PE`, SRAMs `2·√C_PE`, DRAM 8.
    pub fn bandwidth(&self, i: usize, hw: &HardwareConfig) -> f64 {
        match i {
            level::REGISTERS => 2.0 * hw.num_pes() as f64,
            level::ACCUMULATOR | level::SCRATCHPAD => 2.0 * hw.pe_side() as f64,
            level::DRAM => 8.0,
            _ => panic!("unknown memory level {i}"),
        }
    }

    /// Capacity of level `i` in words for configuration `hw`.
    /// Registers hold one weight per PE; DRAM is unbounded (`u64::MAX`).
    pub fn capacity_words(&self, i: usize, hw: &HardwareConfig) -> u64 {
        match i {
            level::REGISTERS => hw.num_pes(),
            level::ACCUMULATOR => hw.acc_words(),
            level::SCRATCHPAD => hw.spad_words(),
            level::DRAM => u64::MAX,
            _ => panic!("unknown memory level {i}"),
        }
    }

    /// Dimensions allowed to carry a spatial factor at level `i`.
    pub fn spatial_dims(&self, i: usize) -> DimSet {
        match self.levels[i].spatial_dim {
            Some(d) => DimSet::EMPTY.with(d),
            None => DimSet::EMPTY,
        }
    }
}

impl Default for Hierarchy {
    fn default() -> Self {
        Hierarchy::gemmini()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b_matrix_matches_table4() {
        let h = Hierarchy::gemmini();
        let expect = [
            (level::REGISTERS, [true, false, false]),
            (level::ACCUMULATOR, [false, false, true]),
            (level::SCRATCHPAD, [true, true, false]),
            (level::DRAM, [true, true, true]),
        ];
        for (i, stores) in expect {
            assert_eq!(h.level(i).stores, stores, "level {i}");
        }
    }

    #[test]
    fn innermost_levels() {
        let h = Hierarchy::gemmini();
        assert_eq!(h.innermost_level(Tensor::Weights), level::REGISTERS);
        assert_eq!(h.innermost_level(Tensor::Outputs), level::ACCUMULATOR);
        assert_eq!(h.innermost_level(Tensor::Inputs), level::SCRATCHPAD);
    }

    #[test]
    fn inner_outer_navigation() {
        let h = Hierarchy::gemmini();
        assert_eq!(
            h.next_inner_level(level::DRAM, Tensor::Weights),
            Some(level::SCRATCHPAD)
        );
        assert_eq!(
            h.next_inner_level(level::SCRATCHPAD, Tensor::Weights),
            Some(level::REGISTERS)
        );
        assert_eq!(h.next_inner_level(level::REGISTERS, Tensor::Weights), None);
        assert_eq!(
            h.next_inner_level(level::DRAM, Tensor::Outputs),
            Some(level::ACCUMULATOR)
        );
        assert_eq!(
            h.next_outer_level(level::ACCUMULATOR, Tensor::Outputs),
            Some(level::DRAM)
        );
        assert_eq!(h.next_outer_level(level::DRAM, Tensor::Inputs), None);
    }

    #[test]
    fn bandwidths_match_table2() {
        let h = Hierarchy::gemmini();
        let hw = HardwareConfig::gemmini_default();
        assert_eq!(h.bandwidth(level::REGISTERS, &hw), 512.0); // 2 * 256
        assert_eq!(h.bandwidth(level::ACCUMULATOR, &hw), 32.0); // 2 * 16
        assert_eq!(h.bandwidth(level::SCRATCHPAD, &hw), 32.0);
        assert_eq!(h.bandwidth(level::DRAM, &hw), 8.0);
    }

    #[test]
    fn spatial_dims_match_gemmini_ws() {
        let h = Hierarchy::gemmini();
        assert!(h.spatial_dims(level::ACCUMULATOR).contains(Dim::C));
        assert!(h.spatial_dims(level::SCRATCHPAD).contains(Dim::K));
        assert!(h.spatial_dims(level::REGISTERS).is_empty());
        assert!(h.spatial_dims(level::DRAM).is_empty());
    }

    #[test]
    fn capacities_reflect_config() {
        let h = Hierarchy::gemmini();
        let hw = HardwareConfig::gemmini_default();
        assert_eq!(h.capacity_words(level::REGISTERS, &hw), 256);
        assert_eq!(h.capacity_words(level::ACCUMULATOR, &hw), 8192);
        assert_eq!(h.capacity_words(level::SCRATCHPAD, &hw), 131072);
        assert_eq!(h.capacity_words(level::DRAM, &hw), u64::MAX);
    }
}
