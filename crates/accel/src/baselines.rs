//! Expert-designed baseline accelerator configurations (Figure 8).
//!
//! The paper evaluates Eyeriss, NVDLA-small, NVDLA-large and the Gemmini
//! default through the same Timeloop template used for Gemmini-TL. We model
//! them the same way: as configurations of the shared memory-hierarchy
//! template, sized from the public descriptions of each design
//! (see DESIGN.md, substitution 4).

use crate::arch::HardwareConfig;

/// A named baseline design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Baseline {
    /// Display name used in Figure 8.
    pub name: &'static str,
    /// The configuration in our shared template.
    pub config: HardwareConfig,
}

/// Eyeriss (Chen et al.): 168 PEs (we use a 13x13 square ≈ 169),
/// 108 KB global buffer, modest accumulation storage.
pub fn eyeriss() -> Baseline {
    Baseline {
        name: "Eyeriss",
        config: HardwareConfig::new(13, 16.0, 108.0).expect("static config valid"),
    }
}

/// NVDLA small profile: 64 MACs (8x8), small convolution buffer.
pub fn nvdla_small() -> Baseline {
    Baseline {
        name: "NVDLA Small",
        config: HardwareConfig::new(8, 8.0, 32.0).expect("static config valid"),
    }
}

/// NVDLA large profile: 1024 MACs (32x32), 512 KB convolution buffer.
pub fn nvdla_large() -> Baseline {
    Baseline {
        name: "NVDLA Large",
        config: HardwareConfig::new(32, 32.0, 512.0).expect("static config valid"),
    }
}

/// Gemmini's hand-tuned default configuration (16x16, 32 KB acc, 128 KB
/// scratchpad).
pub fn gemmini_default() -> Baseline {
    Baseline {
        name: "Gemmini Default",
        config: HardwareConfig::gemmini_default(),
    }
}

/// The four baselines of Figure 8, in plot order.
pub fn all_baselines() -> [Baseline; 4] {
    [eyeriss(), nvdla_small(), nvdla_large(), gemmini_default()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_distinct_baselines() {
        let all = all_baselines();
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i].config, all[j].config);
                assert_ne!(all[i].name, all[j].name);
            }
        }
    }

    #[test]
    fn nvdla_sizes_ordered() {
        assert!(nvdla_small().config.num_pes() < nvdla_large().config.num_pes());
        assert!(nvdla_small().config.spad_kb() < nvdla_large().config.spad_kb());
    }
}
