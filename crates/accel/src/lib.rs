//! # dosa-accel
//!
//! Accelerator hardware descriptions for the DOSA reproduction: the
//! Gemmini-style [`HardwareConfig`] (PE array side, accumulator and
//! scratchpad KB), the weight-stationary memory [`Hierarchy`] with Table 4's
//! tensor-placement matrix, the Table 2 energy-per-access model, and the
//! expert-designed baseline configurations of Figure 8.
//!
//! ## Example
//!
//! ```
//! use dosa_accel::{EnergyModel, HardwareConfig, Hierarchy, level};
//!
//! let hw = HardwareConfig::new(16, 32.0, 128.0)?;
//! let hier = Hierarchy::gemmini();
//! let energy = EnergyModel::for_config(&hw);
//! assert_eq!(hier.bandwidth(level::DRAM, &hw), 8.0);
//! assert!(energy.epa(level::SCRATCHPAD) > energy.epa(level::REGISTERS));
//! # Ok::<(), dosa_accel::HardwareError>(())
//! ```

#![warn(missing_docs)]

mod arch;
mod baselines;
mod energy;
mod hierarchy;

pub use arch::{HardwareConfig, HardwareError, ACC_WORD_BYTES, MAX_PE_SIDE, SPAD_WORD_BYTES};
pub use baselines::{all_baselines, eyeriss, gemmini_default, nvdla_large, nvdla_small, Baseline};
pub use energy::{
    epa_accumulator, epa_scratchpad, pj_to_uj, EnergyModel, EPA_ACC_BASE, EPA_ACC_SLOPE, EPA_DRAM,
    EPA_MAC, EPA_REGISTERS, EPA_SPAD_BASE, EPA_SPAD_SLOPE,
};
pub use hierarchy::{level, Hierarchy, MemoryLevel, DRAM_BLOCK_WORDS, NUM_LEVELS};
