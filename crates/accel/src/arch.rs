//! Hardware configurations: the three parameters DOSA searches (§6.1).

use std::fmt;

/// Maximum PE-array side length (the paper caps the array at 128x128, §6.1).
pub const MAX_PE_SIDE: u64 = 128;

/// Bytes per word in the accumulator (32-bit partial sums; Figure 3).
pub const ACC_WORD_BYTES: u64 = 4;

/// Bytes per word in the scratchpad (8-bit activations/weights; Figure 3).
pub const SPAD_WORD_BYTES: u64 = 1;

/// A Gemmini-style hardware configuration.
///
/// The hardware design space DOSA explores consists of the PE array
/// dimensions, the accumulator SRAM size and the scratchpad SRAM size
/// (§6.1). SRAM sizes are in KB and, like the paper, are rounded up to 1 KB
/// increments when derived from mappings.
///
/// # Examples
///
/// ```
/// use dosa_accel::HardwareConfig;
/// let hw = HardwareConfig::gemmini_default();
/// assert_eq!(hw.pe_side(), 16);
/// assert_eq!(hw.num_pes(), 256);
/// assert_eq!(hw.acc_words(), 32 * 1024 / 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareConfig {
    pe_side: u64,
    acc_kb: f64,
    spad_kb: f64,
}

/// Error constructing a [`HardwareConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HardwareError {
    /// The PE side was zero or above [`MAX_PE_SIDE`].
    BadPeSide(u64),
    /// A buffer size was non-positive or non-finite.
    BadBufferSize,
}

impl fmt::Display for HardwareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HardwareError::BadPeSide(s) => {
                write!(f, "PE side {s} outside 1..={MAX_PE_SIDE}")
            }
            HardwareError::BadBufferSize => write!(f, "buffer sizes must be positive and finite"),
        }
    }
}

impl std::error::Error for HardwareError {}

impl HardwareConfig {
    /// Create a configuration with a `pe_side` x `pe_side` systolic array and
    /// the given SRAM sizes in KB.
    ///
    /// # Errors
    ///
    /// Returns [`HardwareError`] if the PE side is outside `1..=128` or a
    /// buffer size is not positive and finite.
    pub fn new(pe_side: u64, acc_kb: f64, spad_kb: f64) -> Result<HardwareConfig, HardwareError> {
        if pe_side == 0 || pe_side > MAX_PE_SIDE {
            return Err(HardwareError::BadPeSide(pe_side));
        }
        if !(acc_kb.is_finite() && acc_kb > 0.0 && spad_kb.is_finite() && spad_kb > 0.0) {
            return Err(HardwareError::BadBufferSize);
        }
        Ok(HardwareConfig {
            pe_side,
            acc_kb,
            spad_kb,
        })
    }

    /// Gemmini's hand-tuned default: 16x16 PEs, 32 KB accumulator, 128 KB
    /// scratchpad (§6.5.3).
    pub fn gemmini_default() -> HardwareConfig {
        HardwareConfig {
            pe_side: 16,
            acc_kb: 32.0,
            spad_kb: 128.0,
        }
    }

    /// Side length of the square PE array.
    #[inline]
    pub fn pe_side(&self) -> u64 {
        self.pe_side
    }

    /// Total number of processing elements, `C_PE = side²` (Eq. 1).
    #[inline]
    pub fn num_pes(&self) -> u64 {
        self.pe_side * self.pe_side
    }

    /// Accumulator capacity in KB.
    #[inline]
    pub fn acc_kb(&self) -> f64 {
        self.acc_kb
    }

    /// Scratchpad capacity in KB.
    #[inline]
    pub fn spad_kb(&self) -> f64 {
        self.spad_kb
    }

    /// Accumulator capacity in words (4-byte words).
    #[inline]
    pub fn acc_words(&self) -> u64 {
        (self.acc_kb * 1024.0 / ACC_WORD_BYTES as f64).floor() as u64
    }

    /// Scratchpad capacity in words (1-byte words).
    #[inline]
    pub fn spad_words(&self) -> u64 {
        (self.spad_kb * 1024.0 / SPAD_WORD_BYTES as f64).floor() as u64
    }

    /// Round buffer sizes up to whole KB, as DOSA does when converting
    /// mapping requirements into hardware (§6.1).
    #[must_use]
    pub fn rounded_up_to_kb(&self) -> HardwareConfig {
        HardwareConfig {
            pe_side: self.pe_side,
            acc_kb: self.acc_kb.ceil(),
            spad_kb: self.spad_kb.ceil(),
        }
    }

    /// Parameter-wise maximum of two configurations — the reduction DOSA
    /// applies across per-layer minimal hardware requirements (Figure 3).
    #[must_use]
    pub fn max(&self, other: &HardwareConfig) -> HardwareConfig {
        HardwareConfig {
            pe_side: self.pe_side.max(other.pe_side),
            acc_kb: self.acc_kb.max(other.acc_kb),
            spad_kb: self.spad_kb.max(other.spad_kb),
        }
    }
}

impl fmt::Display for HardwareConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} PEs, {:.0} KB acc, {:.0} KB spad",
            self.pe_side, self.pe_side, self.acc_kb, self.spad_kb
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let hw = HardwareConfig::gemmini_default();
        assert_eq!(hw.num_pes(), 256);
        assert_eq!(hw.acc_kb(), 32.0);
        assert_eq!(hw.spad_kb(), 128.0);
        assert_eq!(hw.spad_words(), 128 * 1024);
        assert_eq!(hw.acc_words(), 8192);
    }

    #[test]
    fn rejects_invalid() {
        assert!(HardwareConfig::new(0, 1.0, 1.0).is_err());
        assert!(HardwareConfig::new(129, 1.0, 1.0).is_err());
        assert!(HardwareConfig::new(16, 0.0, 1.0).is_err());
        assert!(HardwareConfig::new(16, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn max_is_parameterwise() {
        let a = HardwareConfig::new(8, 64.0, 32.0).unwrap();
        let b = HardwareConfig::new(32, 16.0, 128.0).unwrap();
        let m = a.max(&b);
        assert_eq!(m.pe_side(), 32);
        assert_eq!(m.acc_kb(), 64.0);
        assert_eq!(m.spad_kb(), 128.0);
    }

    #[test]
    fn rounding_ceils_to_kb() {
        let hw = HardwareConfig::new(16, 30.2, 100.001)
            .unwrap()
            .rounded_up_to_kb();
        assert_eq!(hw.acc_kb(), 31.0);
        assert_eq!(hw.spad_kb(), 101.0);
    }

    #[test]
    fn display_mentions_sizes() {
        let s = HardwareConfig::gemmini_default().to_string();
        assert!(s.contains("16x16") && s.contains("32") && s.contains("128"));
    }
}
