//! Energy-per-access (EPA) model reproducing Table 2.
//!
//! The paper collects EPA numbers for a 40 nm process with Accelergy and its
//! Aladdin and CACTI plug-ins. We reproduce the functional forms of Table 2:
//! compute, register and DRAM access energy are constant per word; SRAM
//! access energy scales with the SRAM geometry (capacity over array side for
//! the accumulator, raw capacity for the scratchpad). Constants are Table 2's
//! verbatim; capacity terms are interpreted in KB (see DESIGN.md §3.5).
//! All EPA values are in picojoules; reported energies are in microjoules.

use crate::arch::HardwareConfig;
#[cfg(test)]
use crate::hierarchy::level;
use crate::hierarchy::NUM_LEVELS;

/// Energy-per-access table for one hardware configuration (values in pJ).
///
/// # Examples
///
/// ```
/// use dosa_accel::{EnergyModel, HardwareConfig};
/// let e = EnergyModel::for_config(&HardwareConfig::gemmini_default());
/// assert_eq!(e.epa_mac(), 0.561);
/// assert!(e.epa(3) == 100.0); // DRAM
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    epa: [f64; NUM_LEVELS],
    epa_mac: f64,
}

/// EPA of one MAC operation (Table 2, "PE" row, pJ).
pub const EPA_MAC: f64 = 0.561;
/// EPA of a register access (Table 2, pJ).
pub const EPA_REGISTERS: f64 = 0.487;
/// Constant term of the accumulator EPA (Table 2, pJ).
pub const EPA_ACC_BASE: f64 = 1.94;
/// Capacity coefficient of the accumulator EPA (pJ per KB per array side).
pub const EPA_ACC_SLOPE: f64 = 0.1005;
/// Constant term of the scratchpad EPA (Table 2, pJ).
pub const EPA_SPAD_BASE: f64 = 0.49;
/// Capacity coefficient of the scratchpad EPA (pJ per KB).
pub const EPA_SPAD_SLOPE: f64 = 0.025;
/// EPA of a DRAM word access (Table 2, pJ).
pub const EPA_DRAM: f64 = 100.0;

impl EnergyModel {
    /// Compute the EPA table for a hardware configuration.
    pub fn for_config(hw: &HardwareConfig) -> EnergyModel {
        EnergyModel {
            epa: [
                EPA_REGISTERS,
                epa_accumulator(hw.acc_kb(), hw.pe_side() as f64),
                epa_scratchpad(hw.spad_kb()),
                EPA_DRAM,
            ],
            epa_mac: EPA_MAC,
        }
    }

    /// EPA of memory level `i` in pJ per word.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    #[inline]
    pub fn epa(&self, i: usize) -> f64 {
        self.epa[i]
    }

    /// EPA of one multiply-accumulate in pJ.
    #[inline]
    pub fn epa_mac(&self) -> f64 {
        self.epa_mac
    }
}

/// Accumulator EPA as a function of capacity (KB) and array side
/// (Table 2: `1.94 + 0.1005 · C₁/√C_PE`).
pub fn epa_accumulator(acc_kb: f64, pe_side: f64) -> f64 {
    EPA_ACC_BASE + EPA_ACC_SLOPE * acc_kb / pe_side.max(1.0)
}

/// Scratchpad EPA as a function of capacity in KB
/// (Table 2: `0.49 + 0.025 · C₂`).
pub fn epa_scratchpad(spad_kb: f64) -> f64 {
    EPA_SPAD_BASE + EPA_SPAD_SLOPE * spad_kb
}

/// Convert accumulated access energy in pJ to the µJ unit used in the
/// paper's EDP plots.
#[inline]
pub fn pj_to_uj(pj: f64) -> f64 {
    pj * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_epas_are_sane() {
        let e = EnergyModel::for_config(&HardwareConfig::gemmini_default());
        assert_eq!(e.epa(level::REGISTERS), 0.487);
        // 1.94 + 0.1005 * 32/16 = 2.141
        assert!((e.epa(level::ACCUMULATOR) - 2.141).abs() < 1e-12);
        // 0.49 + 0.025 * 128 = 3.69
        assert!((e.epa(level::SCRATCHPAD) - 3.69).abs() < 1e-12);
        assert_eq!(e.epa(level::DRAM), 100.0);
        assert_eq!(e.epa_mac(), 0.561);
    }

    #[test]
    fn sram_epa_grows_with_capacity() {
        assert!(epa_scratchpad(256.0) > epa_scratchpad(64.0));
        assert!(epa_accumulator(64.0, 16.0) > epa_accumulator(16.0, 16.0));
        // Larger arrays make the accumulator wider and cheaper per access.
        assert!(epa_accumulator(32.0, 32.0) < epa_accumulator(32.0, 8.0));
    }

    #[test]
    fn unit_conversion() {
        assert_eq!(pj_to_uj(2_000_000.0), 2.0);
    }
}
