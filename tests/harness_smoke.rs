//! Smoke tests of the experiment harness: the informational tables print
//! and the quick-scale Figure 4 study reproduces its headline statistics.

use dosa::bench::{fig4, info, Scale};

#[test]
fn info_tables_print_without_panicking() {
    info::all();
}

#[test]
fn fig4_quick_reproduces_headline_statistics() {
    let out = std::env::temp_dir().join("dosa_harness_smoke");
    let res = fig4::run(Scale::Quick, 7, &out);
    assert!(res.samples >= 200);
    assert!(res.latency.mae_pct < 0.01);
    assert!(res.energy.mae_pct < 1.0);
    assert!(res.edp.within_1pct > 0.9);
    // The CSV artifact is written.
    assert!(out.join("fig4_correlation.csv").exists());
}

#[test]
fn scales_expose_paper_counts() {
    assert_eq!(Scale::Paper.fig4(), (100, 100));
    assert_eq!(Scale::Paper.rtl_dataset(), 1567);
    let gd = Scale::Paper.gd_main(0);
    assert_eq!(gd.start_points, 7);
    assert_eq!(gd.steps_per_start, 1490);
}
