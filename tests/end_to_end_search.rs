//! End-to-end integration: the full one-loop search pipeline across
//! workload -> model -> search -> timeloop crates.

use dosa::prelude::*;

fn toy_layers() -> Vec<Layer> {
    vec![
        Layer::once(Problem::conv("c1", 3, 3, 28, 28, 64, 64, 1).unwrap()),
        Layer::repeated(Problem::conv("c2", 1, 1, 28, 28, 64, 128, 1).unwrap(), 2),
        Layer::once(Problem::matmul("fc", 1, 512, 1000).unwrap()),
    ]
}

#[test]
fn one_loop_search_produces_consistent_configuration() {
    let layers = toy_layers();
    let hier = Hierarchy::gemmini();
    let cfg = GdConfig {
        start_points: 2,
        steps_per_start: 80,
        round_every: 40,
        ..GdConfig::default()
    };
    let res = dosa_search(&layers, &hier, &cfg);

    // Mappings valid and consistent with the reported hardware.
    assert_eq!(res.best_mappings.len(), layers.len());
    for (l, m) in layers.iter().zip(&res.best_mappings) {
        m.validate(&l.problem, &hier).unwrap();
        assert!(dosa::timeloop::fits(&l.problem, m, &res.best_hw, &hier));
    }

    // The reported EDP is reproducible from the artifacts.
    let paired: Vec<(Layer, Mapping)> = layers
        .iter()
        .cloned()
        .zip(res.best_mappings.iter().cloned())
        .collect();
    let perf = evaluate_model(&paired, &res.best_hw, &hier);
    assert!(
        (perf.edp() - res.best_edp).abs() / res.best_edp < 1e-9,
        "reported {} vs recomputed {}",
        res.best_edp,
        perf.edp()
    );

    // The hardware is the parameter-wise max of per-layer minima.
    let pairs: Vec<_> = layers
        .iter()
        .zip(&res.best_mappings)
        .map(|(l, m)| (&l.problem, m))
        .collect();
    let min = min_hw_for_all(pairs, &hier);
    assert_eq!(min.pe_side(), res.best_hw.pe_side());
    assert_eq!(min.acc_kb(), res.best_hw.acc_kb());
    assert_eq!(min.spad_kb(), res.best_hw.spad_kb());
}

#[test]
fn search_beats_the_trivial_mapping() {
    let layers = toy_layers();
    let hier = Hierarchy::gemmini();
    // Trivial: everything at DRAM on minimal hardware.
    let trivial: Vec<Mapping> = layers
        .iter()
        .map(|l| Mapping::all_at_dram(&l.problem))
        .collect();
    let pairs: Vec<_> = layers
        .iter()
        .zip(&trivial)
        .map(|(l, m)| (&l.problem, m))
        .collect();
    let hw = min_hw_for_all(pairs, &hier);
    let paired: Vec<(Layer, Mapping)> = layers.iter().cloned().zip(trivial).collect();
    let trivial_edp = evaluate_model(&paired, &hw, &hier).edp();

    let cfg = GdConfig {
        start_points: 1,
        steps_per_start: 80,
        round_every: 40,
        ..GdConfig::default()
    };
    let res = dosa_search(&layers, &hier, &cfg);
    assert!(
        res.best_edp < trivial_edp / 10.0,
        "search {} vs trivial {}",
        res.best_edp,
        trivial_edp
    );
}

#[test]
fn all_strategies_return_finite_results() {
    let layers = toy_layers();
    let hier = Hierarchy::gemmini();
    for strategy in [
        LoopOrderStrategy::Baseline,
        LoopOrderStrategy::Iterate,
        LoopOrderStrategy::Softmax,
    ] {
        let cfg = GdConfig {
            start_points: 1,
            steps_per_start: 40,
            round_every: 20,
            strategy,
            ..GdConfig::default()
        };
        let res = dosa_search(&layers, &hier, &cfg);
        assert!(res.best_edp.is_finite(), "{strategy:?}");
    }
}

#[test]
fn baseline_searchers_are_dominated_by_dosa_on_seeds() {
    let layers = toy_layers();
    let hier = Hierarchy::gemmini();
    let dosa = dosa_search(
        &layers,
        &hier,
        &GdConfig {
            start_points: 2,
            steps_per_start: 120,
            round_every: 60,
            ..GdConfig::default()
        },
    );
    let random = random_search(
        &layers,
        &hier,
        &RandomSearchConfig {
            num_hw: 3,
            samples_per_hw: dosa.samples / 3,
            seed: 1,
        },
    );
    // DOSA should be at least competitive at equal sample budgets on this
    // toy network (paper: 2.8x better at 10k samples).
    assert!(
        dosa.best_edp <= random.best_edp * 1.5,
        "dosa {} vs random {}",
        dosa.best_edp,
        random.best_edp
    );
}
