//! Property-based agreement between the differentiable model and the
//! reference model — the invariant behind Figure 4, checked across random
//! problems and mappings.

use dosa::accel::{HardwareConfig, Hierarchy};
use dosa::autodiff::Tape;
use dosa::model::{layer_perf_vars, FactorVars, HwVars, RelaxedMapping};
use dosa::timeloop::{evaluate_layer, min_hw, random_mapping};
use dosa::workload::Problem;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_problem() -> impl Strategy<Value = Problem> {
    (
        1u64..=3,   // r
        1u64..=3,   // s
        1u64..=32,  // p
        1u64..=32,  // q
        1u64..=128, // c
        1u64..=128, // k
        1u64..=2,   // stride
    )
        .prop_map(|(r, s, p, q, c, k, stride)| {
            Problem::conv("prop", r, s, p, q, c, k, stride).expect("bounds are positive")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn latency_agrees_exactly(problem in arb_problem(), seed in 0u64..1000) {
        let hier = Hierarchy::gemmini();
        let hw = HardwareConfig::gemmini_default();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_mapping(&mut rng, &problem, &hier, hw.pe_side());
        let reference = evaluate_layer(&problem, &m, &hw, &hier);

        let tape = Tape::new();
        let fv = FactorVars::from_mapping(&tape, &m);
        let hwv = HwVars::fixed(&tape, &hw);
        let perf = layer_perf_vars(&tape, &problem, &fv, &hwv, &hier);
        let rel = (perf.latency.value() - reference.latency_cycles).abs()
            / reference.latency_cycles.max(1.0);
        prop_assert!(rel < 1e-9, "latency diverged: {} vs {}", perf.latency.value(), reference.latency_cycles);
    }

    #[test]
    fn diff_energy_never_exceeds_reference(problem in arb_problem(), seed in 0u64..1000) {
        // The reference adds DRAM block padding; the smooth model cannot be
        // larger.
        let hier = Hierarchy::gemmini();
        let hw = HardwareConfig::gemmini_default();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_mapping(&mut rng, &problem, &hier, hw.pe_side());
        let reference = evaluate_layer(&problem, &m, &hw, &hier);

        let tape = Tape::new();
        let fv = FactorVars::from_mapping(&tape, &m);
        let hwv = HwVars::fixed(&tape, &hw);
        let perf = layer_perf_vars(&tape, &problem, &fv, &hwv, &hier);
        prop_assert!(perf.energy_uj.value() <= reference.energy_uj * (1.0 + 1e-9));
        // And within 35% even in the worst padded case.
        prop_assert!(perf.energy_uj.value() >= reference.energy_uj * 0.65);
    }

    #[test]
    fn derived_hw_matches_integer_min_hw(problem in arb_problem(), seed in 0u64..1000) {
        let hier = Hierarchy::gemmini();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_mapping(&mut rng, &problem, &hier, 32);
        let expect = min_hw(&problem, &m, &hier);

        let tape = Tape::new();
        let fv = FactorVars::from_mapping(&tape, &m);
        let hw = HwVars::derive(&tape, &[(&problem, &fv)]);
        let got = hw.to_config();
        prop_assert_eq!(got.pe_side(), expect.pe_side());
        prop_assert_eq!(got.acc_kb(), expect.acc_kb());
        prop_assert_eq!(got.spad_kb(), expect.spad_kb());
    }

    #[test]
    fn rounding_relaxed_mappings_is_always_valid(problem in arb_problem(), params in proptest::collection::vec(-1.5f64..3.0, 23)) {
        let hier = Hierarchy::gemmini();
        let mut r = RelaxedMapping::identity(dosa::timeloop::Stationarity::WeightStationary);
        r.set_params(&params);
        let m = r.round(&problem);
        prop_assert!(m.validate(&problem, &hier).is_ok());
        // Capped rounding respects a pinned PE side.
        let m16 = r.round_with_cap(&problem, 16);
        prop_assert!(m16.validate(&problem, &hier).is_ok());
        for lvl in 0..dosa::accel::NUM_LEVELS {
            for d in dosa::workload::Dim::ALL {
                prop_assert!(m16.spatial(lvl, d) <= 16);
            }
        }
    }

    #[test]
    fn rtl_never_beats_the_roofline(problem in arb_problem(), seed in 0u64..500) {
        let hier = Hierarchy::gemmini();
        let hw = HardwareConfig::gemmini_default();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_mapping(&mut rng, &problem, &hier, hw.pe_side());
        let reference = evaluate_layer(&problem, &m, &hw, &hier);
        let rtl = dosa::rtl::simulate_latency_default(&problem, &m, &hw, &hier);
        prop_assert!(rtl > reference.latency_cycles * 0.99,
            "rtl {} vs roofline {}", rtl, reference.latency_cycles);
    }
}
