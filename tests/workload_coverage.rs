//! Broad coverage: every layer of all eight Table 6 networks flows through
//! the mapper, min-HW inference, the reference model, and the
//! differentiable model without inconsistency.

use dosa::autodiff::Tape;
use dosa::model::{layer_perf_vars, FactorVars, HwVars};
use dosa::prelude::*;
use dosa::timeloop::fits;
use dosa::workload::correlation_corpus;

#[test]
fn cosa_maps_every_layer_of_every_network() {
    let hier = Hierarchy::gemmini();
    let hw = HardwareConfig::gemmini_default();
    for net in Network::ALL {
        for layer in unique_layers(net) {
            let m = cosa_mapping(&layer.problem, &hw, &hier);
            m.validate(&layer.problem, &hier)
                .unwrap_or_else(|e| panic!("{net}: {}: {e}", layer.problem));
            assert!(
                fits(&layer.problem, &m, &hw, &hier),
                "{net}: {} does not fit {hw} (needs {})",
                layer.problem,
                min_hw(&layer.problem, &m, &hier)
            );
        }
    }
}

#[test]
fn reference_and_diff_model_agree_on_every_corpus_layer() {
    let hier = Hierarchy::gemmini();
    let hw = HardwareConfig::gemmini_default();
    let tape = Tape::new();
    for layer in correlation_corpus() {
        let m = cosa_mapping(&layer.problem, &hw, &hier);
        let reference = evaluate_layer(&layer.problem, &m, &hw, &hier);

        tape.clear();
        let fv = FactorVars::from_mapping(&tape, &m);
        let hwv = HwVars::fixed(&tape, &hw);
        let perf = layer_perf_vars(&tape, &layer.problem, &fv, &hwv, &hier);
        let rel_latency = (perf.latency.value() - reference.latency_cycles).abs()
            / reference.latency_cycles.max(1.0);
        assert!(rel_latency < 1e-9, "{}: latency diverged", layer.problem);
        assert!(
            perf.energy_uj.value() <= reference.energy_uj * (1.0 + 1e-9),
            "{}: diff energy exceeds reference",
            layer.problem
        );
        assert!(
            perf.energy_uj.value() >= reference.energy_uj * 0.6,
            "{}: energy gap beyond the block ceiling",
            layer.problem
        );
    }
}

#[test]
fn every_layer_is_compute_or_memory_bound_sanely() {
    // The roofline must never report latency below the compute bound of the
    // PEs the mapping uses, for any layer and the CoSA mapping.
    let hier = Hierarchy::gemmini();
    let hw = HardwareConfig::gemmini_default();
    for layer in correlation_corpus() {
        let m = cosa_mapping(&layer.problem, &hw, &hier);
        let perf = evaluate_layer(&layer.problem, &m, &hw, &hier);
        let compute_bound = layer.problem.macs() as f64 / m.spatial_product() as f64;
        assert!(
            perf.latency_cycles >= compute_bound * (1.0 - 1e-12),
            "{}: latency {} under compute bound {}",
            layer.problem,
            perf.latency_cycles,
            compute_bound
        );
        assert!(perf.energy_uj > 0.0);
    }
}

#[test]
fn min_hw_never_exceeds_architectural_caps() {
    let hier = Hierarchy::gemmini();
    for net in Network::TARGETS {
        let layers = unique_layers(net);
        let hw = HardwareConfig::new(32, 64.0, 256.0).unwrap();
        let mappings: Vec<Mapping> = layers
            .iter()
            .map(|l| cosa_mapping(&l.problem, &hw, &hier))
            .collect();
        let pairs: Vec<_> = layers
            .iter()
            .zip(&mappings)
            .map(|(l, m)| (&l.problem, m))
            .collect();
        let min = min_hw_for_all(pairs, &hier);
        assert!(min.pe_side() <= 32, "{net}");
        assert!(min.acc_kb() <= 64.0 + 1.0, "{net}");
        assert!(min.spad_kb() <= 256.0 + 1.0, "{net}");
    }
}
