//! Integration of the §6.5 real-hardware flow: RTL dataset generation,
//! learned-model training, fixed-PE search, and RTL measurement.

use dosa::nn::TrainConfig;
use dosa::prelude::*;
use dosa::rtl::RtlConfig;
use dosa::search::{evaluate_rtl, generate_rtl_dataset};

fn layers() -> Vec<Layer> {
    vec![
        Layer::once(Problem::conv("a", 3, 3, 14, 14, 64, 64, 1).unwrap()),
        Layer::once(Problem::matmul("b", 64, 256, 256).unwrap()),
    ]
}

#[test]
fn combined_predictor_tracks_rtl_better_than_analytical_in_mse() {
    let hier = Hierarchy::gemmini();
    let train = generate_rtl_dataset(&layers(), 200, &hier, &RtlConfig::default(), 3);
    let test = generate_rtl_dataset(&layers(), 50, &hier, &RtlConfig::default(), 4);
    let cfg = TrainConfig {
        epochs: 150,
        ..TrainConfig::default()
    };
    let combined = LatencyPredictor::fit(LatencyModelKind::Combined, &train, &cfg, 1);
    let analytical = LatencyPredictor::analytical();

    let log_mse = |p: &LatencyPredictor| {
        test.samples
            .iter()
            .map(|s| {
                let pred = p.predict(&s.problem, &s.mapping, &s.hw, &hier).max(1.0);
                let d = pred.ln() - s.rtl_cycles.ln();
                d * d
            })
            .sum::<f64>()
            / test.samples.len() as f64
    };
    let mse_combined = log_mse(&combined);
    let mse_analytical = log_mse(&analytical);
    assert!(
        mse_combined < mse_analytical,
        "combined {mse_combined} vs analytical {mse_analytical}"
    );
}

#[test]
fn rtl_search_produces_measurable_configurations() {
    let hier = Hierarchy::gemmini();
    let rtl_cfg = RtlConfig::default();
    let cfg = GdConfig {
        start_points: 1,
        steps_per_start: 60,
        round_every: 30,
        fixed_pe_side: Some(16),
        ..GdConfig::default()
    };
    let res = dosa_search_rtl(&layers(), &hier, &cfg, &LatencyPredictor::analytical());
    assert_eq!(res.best_hw.pe_side(), 16);
    let measured = evaluate_rtl(&layers(), &res.best_mappings, &res.best_hw, &hier, &rtl_cfg);
    assert!(measured.edp().is_finite() && measured.edp() > 0.0);
    // RTL latency strictly exceeds the analytical roofline.
    let paired: Vec<(Layer, Mapping)> = layers()
        .iter()
        .cloned()
        .zip(res.best_mappings.iter().cloned())
        .collect();
    let analytical = evaluate_model(&paired, &res.best_hw, &hier);
    assert!(measured.latency_cycles > analytical.latency_cycles);
}

#[test]
fn optimized_rtl_config_beats_naive_default_mapping() {
    let hier = Hierarchy::gemmini();
    let rtl_cfg = RtlConfig::default();
    let ls = layers();
    // Naive: everything at DRAM on default hardware.
    let naive: Vec<Mapping> = ls
        .iter()
        .map(|l| Mapping::all_at_dram(&l.problem))
        .collect();
    let hw = HardwareConfig::gemmini_default();
    let naive_perf = evaluate_rtl(&ls, &naive, &hw, &hier, &rtl_cfg);

    let cfg = GdConfig {
        start_points: 1,
        steps_per_start: 60,
        round_every: 30,
        fixed_pe_side: Some(16),
        ..GdConfig::default()
    };
    let res = dosa_search_rtl(&ls, &hier, &cfg, &LatencyPredictor::analytical());
    let tuned = evaluate_rtl(&ls, &res.best_mappings, &res.best_hw, &hier, &rtl_cfg);
    assert!(
        tuned.edp() < naive_perf.edp(),
        "tuned {} vs naive {}",
        tuned.edp(),
        naive_perf.edp()
    );
}
