//! Offline stand-in for the subset of the `criterion` benchmarking API
//! used by this workspace (see `vendor/README.md`): the `Criterion`
//! builder (`sample_size` / `measurement_time` / `warm_up_time`),
//! `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! It measures wall-clock time with `std::time::Instant` and prints
//! `name  time: [min mean max]` lines; there is no statistical analysis,
//! outlier filtering or HTML report.

// Committed clippy allowlist: this stand-in mirrors a third-party API
// shape-for-shape (including idioms clippy flags), so CI's
// `cargo clippy --workspace -- -D warnings` gate polices first-party
// crates only.
#![allow(clippy::all)]

use std::time::{Duration, Instant};

/// Benchmark driver and configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Upper bound on total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut b);
        let s = &b.samples;
        if s.is_empty() {
            println!("{id:<40} (no samples)");
            return self;
        }
        let min = s.iter().copied().fold(f64::INFINITY, f64::min);
        let max = s.iter().copied().fold(0.0f64, f64::max);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max)
        );
        self
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.3} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.3} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Per-benchmark timing harness handed to the closure.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Time `f`, recording one duration per sample. Honors the configured
    /// sample count but stops early once the measurement-time budget is
    /// spent.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: run at least once, up to the warm-up budget.
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(f());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t.elapsed().as_secs_f64());
            if budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

/// Re-export matching upstream's `criterion::black_box`.
pub use std::hint::black_box;

/// Define a benchmark group: either `criterion_group!(name, target, ...)`
/// or the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut runs = 0usize;
        c.bench_function("trivial", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(
            runs >= 3,
            "warm-up + samples should run the closure: {runs}"
        );
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(fmt_time(2.5e-9).contains("ns"));
        assert!(fmt_time(2.5e-6).contains("µs"));
        assert!(fmt_time(2.5e-3).contains("ms"));
        assert!(fmt_time(2.5).contains(" s") || fmt_time(2.5).ends_with('s'));
    }
}
