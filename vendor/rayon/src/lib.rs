//! Offline stand-in for the subset of the `rayon` API used by this
//! workspace (see `vendor/README.md`): `Vec::into_par_iter()` followed by
//! `.enumerate()` / `.map(..)` / `.collect()`, plus the global thread-pool
//! sizing knobs (`ThreadPoolBuilder::num_threads(..).build_global()`,
//! [`current_num_threads`]).
//!
//! Execution model: combinators stage the items; `collect()` materializes
//! the pipeline by fanning the items out over `current_num_threads()`
//! scoped OS threads pulling indices from a shared atomic counter. Results
//! land at their item's index, so output order — and therefore every
//! deterministic reduction built on it — is independent of thread count
//! and scheduling.

// Committed clippy allowlist: this stand-in mirrors a third-party API
// shape-for-shape (including idioms clippy flags), so CI's
// `cargo clippy --workspace -- -D warnings` gate polices first-party
// crates only.
#![allow(clippy::all)]

use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The prelude, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator};
}

static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`] on the
    /// calling thread (0 = no override).
    static INSTALLED_THREADS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Number of worker threads parallel pipelines will use: the
/// [`ThreadPool::install`] scope's count if inside one, else the value set
/// via [`ThreadPoolBuilder::build_global`], else the machine's available
/// parallelism.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(|c| c.get());
    if installed > 0 {
        return installed;
    }
    match NUM_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Error from [`ThreadPoolBuilder::build_global`] (never produced here;
/// kept for upstream signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures the global worker count, mirroring rayon's builder.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Start a builder.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Set the worker-thread count (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = Some(n);
        self
    }

    /// Install the configuration globally. Unlike upstream, calling this
    /// more than once simply overwrites the previous value; portable code
    /// (code that must also work against real rayon, where a second call
    /// errors) should prefer [`ThreadPoolBuilder::build`] +
    /// [`ThreadPool::install`].
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        NUM_THREADS.store(self.num_threads.unwrap_or(0), Ordering::Relaxed);
        Ok(())
    }

    /// Build a scoped pool handle, mirroring upstream's
    /// `ThreadPoolBuilder::build`.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or(0),
        })
    }
}

/// A scoped worker-count configuration, mirroring upstream's `ThreadPool`:
/// parallel pipelines started inside [`ThreadPool::install`] use this
/// pool's thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's worker count in effect on the calling
    /// thread (restored afterwards, also on panic-free early return).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let prev = INSTALLED_THREADS.with(|c| {
            let prev = c.get();
            c.set(self.num_threads.max(1));
            prev
        });
        let _restore = Restore(prev);
        f()
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        }
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The parallel iterator produced.
    type Iter;
    /// Start a parallel pipeline over `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Collection types a parallel pipeline can materialize into.
pub trait FromParallelIterator<T> {
    /// Build the collection from the in-order results.
    fn from_par(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par(items: Vec<T>) -> Vec<T> {
        items
    }
}

/// A staged parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pair every item with its index (index assignment is sequential and
    /// therefore deterministic).
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Stage a map; the closure runs on worker threads at `collect` time.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, R, F> {
        ParMap {
            items: self.items,
            f,
            _out: PhantomData,
        }
    }

    /// Materialize the items unchanged.
    pub fn collect<C: FromParallelIterator<T>>(self) -> C {
        C::from_par(self.items)
    }
}

/// A staged parallel map, executed on `collect`.
pub struct ParMap<T, R, F> {
    items: Vec<T>,
    f: F,
    _out: PhantomData<fn() -> R>,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, R, F> {
    /// Run the map over the worker threads and gather results in item
    /// order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_par(par_map(self.items, self.f))
    }
}

/// Fan `items` out over worker threads, returning results in item order.
fn par_map<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: F) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n).max(1);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each index is claimed once");
                let out = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_then_map_sees_stable_indices() {
        let v = vec!["a", "b", "c", "d"];
        let out: Vec<(usize, &str)> = v.into_par_iter().enumerate().map(|p| p).collect();
        assert_eq!(out, vec![(0, "a"), (1, "b"), (2, "c"), (3, "d")]);
    }

    #[test]
    fn runs_on_many_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let v: Vec<usize> = (0..64).collect();
        let _: Vec<()> = v
            .into_par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(2));
            })
            .collect();
        if current_num_threads() > 1 {
            assert!(ids.lock().unwrap().len() > 1, "expected multiple workers");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn builder_is_accepted() {
        // Not build_global here (tests share the process); just exercise the API.
        let b = ThreadPoolBuilder::new().num_threads(3);
        assert!(format!("{b:?}").contains('3'));
    }

    #[test]
    fn install_scopes_thread_count_and_restores() {
        let outer = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inner = pool.install(current_num_threads);
        assert_eq!(inner, 3);
        assert_eq!(current_num_threads(), outer);
        // Nested installs unwind correctly.
        let pool2 = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (a, b) = pool.install(|| {
            let a = current_num_threads();
            let b = pool2.install(current_num_threads);
            assert_eq!(current_num_threads(), 3);
            (a, b)
        });
        assert_eq!((a, b), (3, 2));
    }

    #[test]
    fn install_controls_parallel_collect() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let v: Vec<usize> = (0..16).collect();
        let out: Vec<usize> = pool.install(|| {
            v.into_par_iter()
                .map(|x| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                    x
                })
                .collect()
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
        // num_threads(1) must not spawn workers at all.
        assert_eq!(ids.lock().unwrap().len(), 1);
    }
}
