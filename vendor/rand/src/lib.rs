//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace (see `vendor/README.md`).
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`] and [`seq::SliceRandom`]. The generated stream is
//! deterministic for a given seed on every platform, but differs from
//! upstream `rand`'s `StdRng` stream.

// Committed clippy allowlist: this stand-in mirrors a third-party API
// shape-for-shape (including idioms clippy flags), so CI's
// `cargo clippy --workspace -- -D warnings` gate polices first-party
// crates only.
#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Types that can construct themselves from a seed.
pub trait SeedableRng: Sized {
    /// Build an RNG from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of randomness plus the sampling helpers the workspace uses.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Standard-distribution sampling (the `gen::<T>()` entry point).
pub trait Standard {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from this range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        a + u * (b - a)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range");
                let span = (b as i128 - a as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (a as i128 + v as i128) as $t
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The RNG types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ with SplitMix64 seeding.
    /// Deterministic for a given seed on every platform.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Slice helpers (`shuffle`, `choose`).
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        /// Uniformly pick one element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let a = rng.gen_range(2..=6u32);
            assert!((2..=6).contains(&a));
            let b = rng.gen_range(0..5usize);
            assert!(b < 5);
            let c = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&c));
            let d = rng.gen_range(-3i64..-1);
            assert!((-3..-1).contains(&d));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_mut_reference() {
        fn takes_rng(rng: &mut impl Rng) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(0);
        let r = &mut rng;
        let x = takes_rng(r);
        assert!((0.0..1.0).contains(&x));
    }
}
