//! Offline stand-in for the subset of the `proptest` API used by this
//! workspace (see `vendor/README.md`): the `proptest!` macro with an
//! optional `#![proptest_config(..)]` attribute, `prop_assert!` /
//! `prop_assert_eq!`, `ProptestConfig::with_cases`, and the strategies the
//! tests build — numeric ranges, tuples of strategies, `.prop_map`, and
//! `proptest::collection::vec`.
//!
//! Semantics: purely randomized testing with a fixed deterministic seed
//! per test function; there is no shrinking and no failure persistence.
//! Each failing case panics with the standard assertion message.

// Committed clippy allowlist: this stand-in mirrors a third-party API
// shape-for-shape (including idioms clippy flags), so CI's
// `cargo clippy --workspace -- -D warnings` gate polices first-party
// crates only.
#![allow(clippy::all)]

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F, O>
    where
        Self: Sized,
    {
        Map {
            inner: self,
            f,
            _out: PhantomData,
        }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F, O> {
    inner: S,
    f: F,
    _out: PhantomData<fn() -> O>,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F, O> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! int_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )+};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{SizeBound, Strategy};
    use rand::rngs::StdRng;

    /// A strategy producing `Vec`s of `elem` with a length drawn from
    /// `size` (a fixed `usize` or a `usize` range).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeBound>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// The result of [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeBound,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Length specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub enum SizeBound {
    /// Exactly this many elements.
    Fixed(usize),
    /// Uniform in `[lo, hi)`.
    Half(usize, usize),
    /// Uniform in `[lo, hi]`.
    Full(usize, usize),
}

impl SizeBound {
    fn sample(self, rng: &mut StdRng) -> usize {
        match self {
            SizeBound::Fixed(n) => n,
            SizeBound::Half(lo, hi) => rng.gen_range(lo..hi),
            SizeBound::Full(lo, hi) => rng.gen_range(lo..=hi),
        }
    }
}

impl From<usize> for SizeBound {
    fn from(n: usize) -> SizeBound {
        SizeBound::Fixed(n)
    }
}

impl From<Range<usize>> for SizeBound {
    fn from(r: Range<usize>) -> SizeBound {
        SizeBound::Half(r.start, r.end)
    }
}

impl From<RangeInclusive<usize>> for SizeBound {
    fn from(r: RangeInclusive<usize>) -> SizeBound {
        SizeBound::Full(*r.start(), *r.end())
    }
}

/// Internals used by the generated test bodies.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic RNG for one generated test function: seeded from the
    /// test's name so independent tests draw independent streams, yet every
    /// run of the suite replays the identical cases.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declare randomized test functions:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u64..100, y in -1.0f64..1.0) {
///         prop_assert!(x as f64 + y < 101.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::rng_for(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(a in 1u64..=5, b in -1.0f64..1.0, (c, d) in (0usize..4, 0u32..7)) {
            prop_assert!((1..=5).contains(&a));
            prop_assert!((-1.0..1.0).contains(&b));
            prop_assert!(c < 4 && d < 7);
        }

        #[test]
        fn prop_map_transforms(s in (1u64..=3, 1u64..=3).prop_map(|(x, y)| x * y)) {
            prop_assert!((1..=9).contains(&s));
        }

        #[test]
        fn collection_vec_lengths(xs in crate::collection::vec(0.0f64..1.0, 2..6), ys in crate::collection::vec(0u64..9, 4)) {
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert_eq!(ys.len(), 4);
        }
    }

    #[test]
    fn per_test_rng_is_deterministic() {
        use rand::Rng;
        let mut a = crate::test_runner::rng_for("t");
        let mut b = crate::test_runner::rng_for("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::rng_for("other");
        let _ = c.next_u64();
    }
}
